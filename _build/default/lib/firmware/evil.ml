module Asm = Mir_asm.Asm
module C = Mir_rv.Csr_addr
open Asm.I
open Asm.Reg

type attack =
  | Read_os_memory
  | Write_os_memory
  | Read_miralis_memory
  | Pmp_escape
  | Dma_attack

let attack_name = function
  | Read_os_memory -> "read OS memory"
  | Write_os_memory -> "write OS memory"
  | Read_miralis_memory -> "read Miralis memory"
  | Pmp_escape -> "vPMP escape"
  | Dma_attack -> "DMA exfiltration"

let all_attacks =
  [ Read_os_memory; Write_os_memory; Read_miralis_memory; Pmp_escape;
    Dma_attack ]

(* The top MiB of RAM is Miralis's reserved range (Config.make). *)
let miralis_base = 0x80F00000L
let blockdev = Mir_rv.Blockdev.default_base

let attack_code = function
  | Read_os_memory ->
      [ li t0 Layout.kernel_base; ld t1 0L t0 ]
  | Write_os_memory ->
      [ li t0 Layout.kernel_base; li t1 0xDEADL; sd t1 0L t0 ]
  | Read_miralis_memory -> [ li t0 miralis_base; ld t1 0L t0 ]
  | Pmp_escape ->
      [
        (* Open vPMP 0 over all memory with RWX... *)
        li t0 (-1L);
        csrw (C.pmpaddr 0) t0;
        li t0 0x1FL;
        csrw (C.pmpcfg 0) t0;
        (* ...then read the kernel. Policy PMPs outrank vPMPs, so the
           load must still fault. *)
        li t0 Layout.kernel_base;
        ld t1 0L t0;
      ]
  | Dma_attack ->
      [
        (* Program the block device to DMA the kernel image out to
           disk: sector 0, source = kernel, 512 bytes, cmd 2 =
           write-from-RAM. *)
        li t0 blockdev;
        sd zero 0L t0;
        li t1 Layout.kernel_base;
        sd t1 8L t0;
        li t1 512L;
        sd t1 16L t0;
        li t1 2L;
        sd t1 24L t0;
      ]

let program attack ~nharts ~kernel_entry =
  ignore nharts;
  [
    label "entry";
    la t0 "mtrap";
    csrw C.mtvec t0;
    (* open memory to S/U and boot the kernel, exactly like honest
       firmware, so the sandbox locks down *)
    li t0 (-1L);
    csrw (C.pmpaddr 0) t0;
    li t0 0x1FL;
    csrw (C.pmpcfg 0) t0;
    li t0 (-1L);
    csrw C.mcounteren t0;
    csrw C.scounteren t0;
    li t0 kernel_entry;
    csrw C.mepc t0;
    li t1 0x1800L;
    csrc C.mstatus t1;
    li t1 0x800L;
    csrs C.mstatus t1;
    csrr a0 C.mhartid;
    li a1 0L;
    mret;
    (* Any trap from the OS triggers the attack. *)
    label "mtrap";
  ]
  @ attack_code attack
  @ [
      (* If we get here the sandbox failed: signal success. *)
      li t0 Layout.uart;
      li t1 (Int64.of_int (Char.code 'X'));
      sb t1 0L t0;
      label "spin";
      j "spin";
    ]

let image attack ~nharts ~kernel_entry =
  Asm.assemble ~base:Layout.fw_base (program attack ~nharts ~kernel_entry)
