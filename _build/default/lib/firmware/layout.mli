(** Memory layout shared by firmware images and guest kernels. *)

val fw_base : int64
(** Firmware load address (the DRAM base, like OpenSBI's FW_TEXT). *)

val fw_data : int64
(** Firmware data area (trap frames, flags). *)

val fw_stack_top : int64
(** Top of the firmware stack region; each hart gets 4 KiB below. *)

val fw_size : int64
(** Memory reserved for the firmware (the sandbox policy confines the
    firmware to [fw_base, fw_base+fw_size)). *)

val kernel_base : int64
(** Guest (S-mode) kernel load address. *)

val kernel_data : int64
(** Scratch/data area for kernels (result cells, counters). *)

val frame_addr : hart:int -> int64
(** The firmware's per-hart trap frame (32 saved registers). *)

val stack_addr : hart:int -> int64
val syscon : int64
val clint : int64
val uart : int64
