module Asm = Mir_asm.Asm
module C = Mir_rv.Csr_addr
open Asm.I
open Asm.Reg

let ticks = 8
let expected_output = String.make ticks 'z' ^ "Z"
let counter = Int64.add Layout.fw_data 0x100L
let scratch = Int64.add Layout.fw_data 0x140L
let clint_mtime = Int64.add Layout.clint 0xBFF8L
let clint_mtimecmp = Int64.add Layout.clint 0x4000L
let tick_period = 400L

let program =
  [
    label "entry";
    csrr t0 C.mhartid;
    bnez t0 "park";
    la t0 "ztrap";
    csrw C.mtvec t0;
    li t1 counter;
    sd zero 0L t1;
    (* arm the first tick *)
    li t2 clint_mtime;
    ld t3 0L t2;
    addi t3 t3 tick_period;
    li t4 clint_mtimecmp;
    sd t3 0L t4;
    li t0 0x80L;
    csrw C.mie t0;
    csrsi C.mstatus 8;
    (* ---------------- cooperative main loop ---------------- *)
    label "main_loop";
    li t1 counter;
    ld s0 0L t1;
    label "wait_tick";
    wfi;
    li t1 counter;
    ld s1 0L t1;
    beq s1 s0 "wait_tick";
    (* task body: some work, then report the tick *)
    li t2 300L;
    label "work";
    addi t2 t2 (-1L);
    bnez t2 "work";
    li t3 Layout.uart;
    li t4 (Int64.of_int (Char.code 'z'));
    sb t4 0L t3;
    li t5 (Int64.of_int ticks);
    blt s1 t5 "main_loop";
    (* done *)
    li t4 (Int64.of_int (Char.code 'Z'));
    sb t4 0L t3;
    li t0 Layout.syscon;
    li t1 0x5555L;
    sw t1 0L t0;
    label "park";
    wfi;
    j "park";
    (* ---------------- tick handler ---------------- *)
    label "ztrap";
    csrw C.mscratch t0;
    li t0 scratch;
    sd t2 0L t0;
    sd t3 8L t0;
    li t2 counter;
    ld t3 0L t2;
    addi t3 t3 1L;
    sd t3 0L t2;
    li t2 clint_mtime;
    ld t3 0L t2;
    addi t3 t3 tick_period;
    li t2 clint_mtimecmp;
    sd t3 0L t2;
    li t0 scratch;
    ld t2 0L t0;
    ld t3 8L t0;
    csrr t0 C.mscratch;
    mret;
  ]

let image ~nharts ~kernel_entry =
  ignore nharts;
  ignore kernel_entry;
  Asm.assemble ~base:Layout.fw_base program
