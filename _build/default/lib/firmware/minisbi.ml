module Asm = Mir_asm.Asm
module C = Mir_rv.Csr_addr
open Asm.I
open Asm.Reg

let entry = Layout.fw_base

(* Trap-frame register save/restore: register i lives at offset 8*i of
   the per-hart frame. sp (x2) is handled through mscratch. *)
let save_gprs =
  List.concat_map
    (fun r -> if r = 2 then [] else [ sd r (Int64.of_int (8 * r)) sp ])
    (List.init 31 (fun i -> i + 1))

let restore_gprs =
  List.concat_map
    (fun r -> if r = 2 then [] else [ ld r (Int64.of_int (8 * r)) sp ])
    (List.init 31 (fun i -> i + 1))

(* multi-hart console serialization, like OpenSBI's console lock *)
let console_lock = Int64.add Layout.fw_data 0x7000L
let clint_msip = Layout.clint
let clint_mtimecmp = Int64.add Layout.clint 0x4000L
let clint_mtime = Int64.add Layout.clint 0xBFF8L
let mstatus_mprv = 0x20000L

let program ~nharts ~kernel_entry =
  [
    (* ---------------- boot ---------------- *)
    label "entry";
    la t0 "mtrap";
    csrw C.mtvec t0;
    csrr a0 C.mhartid;
    (* per-hart stack *)
    li sp Layout.fw_stack_top;
    li t0 4096L;
    mul t0 a0 t0;
    sub sp sp t0;
    (* per-hart trap frame in mscratch *)
    li t0 Layout.fw_data;
    li t1 256L;
    mul t1 a0 t1;
    add t0 t0 t1;
    csrw C.mscratch t0;
    (* delegate the usual exceptions and all S interrupts (OpenSBI's
       defaults): breakpoints, ecall-from-U, page faults, fetch
       misalign. Misaligned loads/stores and illegal instructions stay
       in M for emulation. *)
    li t0 0xB109L;
    csrw C.medeleg t0;
    li t0 0x222L;
    csrw C.mideleg t0;
    (* enable software interrupts (timer enabled on demand) *)
    li t0 0x8L;
    csrw C.mie t0;
    (* open the counters to S and U (cycle, time, instret) *)
    li t0 (-1L);
    csrw C.mcounteren t0;
    csrw C.scounteren t0;
    (* open all memory to S/U with the lowest-priority PMP entry *)
    li t0 (-1L);
    csrw (C.pmpaddr 0) t0;
    li t0 0x1FL;
    csrw (C.pmpcfg 0) t0;
    (* enter the S-mode kernel: mstatus.MPP = S *)
    li t0 kernel_entry;
    csrw C.mepc t0;
    li t1 0x1800L;
    csrc C.mstatus t1;
    li t1 0x800L;
    csrs C.mstatus t1;
    csrr a0 C.mhartid;
    li a1 0L;
    mret;
    (* ---------------- trap entry ---------------- *)
    label "mtrap";
    csrrw sp C.mscratch sp;
  ]
  @ save_gprs
  @ [
      csrr t0 C.mscratch;
      sd t0 16L sp;
      (* frame[2] = guest sp *)
      csrw C.mscratch sp;
      (* dispatch *)
      csrr s0 C.mcause;
      blt s0 zero "interrupt";
      li t0 9L;
      beq s0 t0 "ecall_s";
      li t0 2L;
      beq s0 t0 "illegal";
      li t0 4L;
      beq s0 t0 "mis_load";
      li t0 6L;
      beq s0 t0 "mis_store";
      j "unhandled";
      (* ---------------- interrupts ---------------- *)
      label "interrupt";
      slli s0 s0 1;
      srli s0 s0 1;
      li t0 7L;
      beq s0 t0 "mti";
      li t0 3L;
      beq s0 t0 "msi";
      j "restore";
      (* machine timer: forward to S as STIP and mask until the next
         set_timer *)
      label "mti";
      li t0 0x20L;
      csrs C.mip t0;
      li t0 0x80L;
      csrc C.mie t0;
      j "restore";
      (* software interrupt: clear msip, fence, raise SSIP *)
      label "msi";
      csrr t0 C.mhartid;
      slli t0 t0 2;
      li t1 clint_msip;
      add t1 t1 t0;
      sw zero 0L t1;
      fence_i;
      li t0 0x2L;
      csrs C.mip t0;
      j "restore";
      (* ---------------- SBI calls ---------------- *)
      label "ecall_s";
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      ld s1 136L sp;
      (* a7: extension *)
      ld s2 128L sp;
      (* a6: function *)
      ld s3 80L sp;
      (* a0 *)
      ld s4 88L sp;
      (* a1 *)
      li t0 Mir_sbi.Sbi.ext_time;
      beq s1 t0 "sbi_time";
      li t0 Mir_sbi.Sbi.ext_ipi;
      beq s1 t0 "sbi_ipi";
      li t0 Mir_sbi.Sbi.ext_rfence;
      beq s1 t0 "sbi_rfence";
      li t0 Mir_sbi.Sbi.ext_base;
      beq s1 t0 "sbi_base";
      li t0 Mir_sbi.Sbi.ext_dbcn;
      beq s1 t0 "sbi_dbcn";
      li t0 Mir_sbi.Sbi.ext_srst;
      beq s1 t0 "sbi_srst";
      beqz s1 "sbi_time";
      (* legacy set_timer *)
      li t0 1L;
      beq s1 t0 "sbi_putchar";
      (* not supported *)
      li t0 (-2L);
      sd t0 80L sp;
      sd zero 88L sp;
      j "restore";
      (* set_timer(deadline = a0) *)
      label "sbi_time";
      csrr t0 C.mhartid;
      slli t0 t0 3;
      li t1 clint_mtimecmp;
      add t1 t1 t0;
      sd s3 0L t1;
      li t0 0x20L;
      csrc C.mip t0;
      li t0 0x80L;
      csrs C.mie t0;
      j "sbi_ok";
      (* send_ipi(mask = a0, base = a1) *)
      label "sbi_ipi";
      li t0 (-1L);
      bne s4 t0 "ipi_shift";
      li s3 (-1L);
      j "ipi_loop_init";
      label "ipi_shift";
      sll s3 s3 s4;
      label "ipi_loop_init";
      li t1 0L;
      li t2 (Int64.of_int nharts);
      label "ipi_loop";
      bge t1 t2 "sbi_ok";
      srl t0 s3 t1;
      andi t0 t0 1L;
      beqz t0 "ipi_next";
      slli t3 t1 2;
      li t4 clint_msip;
      add t4 t4 t3;
      li t5 1L;
      sw t5 0L t4;
      label "ipi_next";
      addi t1 t1 1L;
      j "ipi_loop";
      (* remote fence: local fence.i, then IPI the targets (their MSI
         handler fences) *)
      label "sbi_rfence";
      fence_i;
      j "sbi_ipi";
      (* base extension: probe returns 1, the rest return 0 *)
      label "sbi_base";
      li t0 3L;
      bne s2 t0 "base_zero";
      li t0 1L;
      sd t0 88L sp;
      sd zero 80L sp;
      j "restore";
      label "base_zero";
      sd zero 80L sp;
      sd zero 88L sp;
      j "restore";
      (* debug console: write_byte only *)
      label "sbi_dbcn";
      li t0 2L;
      bne s2 t0 "base_zero";
      label "sbi_putchar";
      (* serialize console output across harts with a spinlock *)
      li t2 console_lock;
      label "console_lock_try";
      li t3 1L;
      amoswap_w t3 t3 t2;
      bnez t3 "console_lock_try";
      li t1 Layout.uart;
      andi t0 s3 0xFFL;
      sb t0 0L t1;
      fence;
      sw zero 0L t2;
      j "sbi_ok";
      (* system reset: power off through the syscon *)
      label "sbi_srst";
      li t0 Layout.syscon;
      li t1 0x5555L;
      sw t1 0L t0;
      j "sbi_ok";
      label "sbi_ok";
      sd zero 80L sp;
      sd zero 88L sp;
      j "restore";
      (* ---------------- illegal instruction: rdtime emulation ------ *)
      label "illegal";
      csrr s1 C.mtval;
      srli t0 s1 20;
      li t1 0xC01L;
      bne t0 t1 "unhandled";
      srli t0 s1 12;
      andi t0 t0 7L;
      li t1 2L;
      bne t0 t1 "unhandled";
      (* rd <- mtime *)
      srli s2 s1 7;
      andi s2 s2 31L;
      li t0 clint_mtime;
      ld t1 0L t0;
      slli s2 s2 3;
      add s2 s2 sp;
      sd t1 0L s2;
      sd zero 0L sp;
      (* keep frame[0] = 0 in case rd was x0 *)
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      j "restore";
      (* ---------------- misaligned loads ---------------- *)
      (* Fetch the faulting instruction and perform the access
         byte-by-byte under mstatus.MPRV, like OpenSBI does — the
         MPRV path is what Miralis emulates with an execute-only
         PMP catch-all. *)
      label "mis_load";
      csrr s1 C.mtval;
      csrr s2 C.mepc;
      li t0 mstatus_mprv;
      csrs C.mstatus t0;
      lbu t1 0L s2;
      lbu t2 1L s2;
      lbu t3 2L s2;
      lbu t4 3L s2;
      li t0 mstatus_mprv;
      csrc C.mstatus t0;
      slli t2 t2 8;
      slli t3 t3 16;
      slli t4 t4 24;
      or_ t1 t1 t2;
      or_ t1 t1 t3;
      or_ t1 t1 t4;
      mv s3 t1;
      (* funct3 *)
      srli s4 s3 12;
      andi s4 s4 7L;
      (* rd *)
      srli s5 s3 7;
      andi s5 s5 31L;
      (* size: funct3 & 3 -> 1:2B, 2:4B, 3:8B *)
      andi t0 s4 3L;
      li s6 2L;
      li t1 1L;
      beq t0 t1 "ld_size_done";
      li s6 4L;
      li t1 2L;
      beq t0 t1 "ld_size_done";
      li s6 8L;
      label "ld_size_done";
      li s8 0L;
      addi t2 s6 (-1L);
      li t0 mstatus_mprv;
      csrs C.mstatus t0;
      label "ld_loop";
      blt t2 zero "ld_done";
      add t3 s1 t2;
      lbu t4 0L t3;
      slli s8 s8 8;
      or_ s8 s8 t4;
      addi t2 t2 (-1L);
      j "ld_loop";
      label "ld_done";
      li t0 mstatus_mprv;
      csrc C.mstatus t0;
      (* sign-extend for lh/lw (funct3 1,2); lhu/lwu are 5,6 *)
      li t1 4L;
      bge s4 t1 "ld_no_sext";
      li t1 64L;
      slli t3 s6 3;
      sub t1 t1 t3;
      sll s8 s8 t1;
      sra s8 s8 t1;
      label "ld_no_sext";
      slli s5 s5 3;
      add s5 s5 sp;
      sd s8 0L s5;
      sd zero 0L sp;
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      j "restore";
      (* ---------------- misaligned stores ---------------- *)
      label "mis_store";
      csrr s1 C.mtval;
      csrr s2 C.mepc;
      li t0 mstatus_mprv;
      csrs C.mstatus t0;
      lbu t1 0L s2;
      lbu t2 1L s2;
      lbu t3 2L s2;
      lbu t4 3L s2;
      li t0 mstatus_mprv;
      csrc C.mstatus t0;
      slli t2 t2 8;
      slli t3 t3 16;
      slli t4 t4 24;
      or_ t1 t1 t2;
      or_ t1 t1 t3;
      or_ t1 t1 t4;
      mv s3 t1;
      srli s4 s3 12;
      andi s4 s4 7L;
      (* rs2: bits 24:20 *)
      srli s5 s3 20;
      andi s5 s5 31L;
      slli s5 s5 3;
      add s5 s5 sp;
      ld s8 0L s5;
      andi t0 s4 3L;
      li s6 2L;
      li t1 1L;
      beq t0 t1 "st_size_done";
      li s6 4L;
      li t1 2L;
      beq t0 t1 "st_size_done";
      li s6 8L;
      label "st_size_done";
      li t0 mstatus_mprv;
      csrs C.mstatus t0;
      li t2 0L;
      label "st_loop";
      bge t2 s6 "st_done";
      add t3 s1 t2;
      andi t4 s8 0xFFL;
      sb t4 0L t3;
      srli s8 s8 8;
      addi t2 t2 1L;
      j "st_loop";
      label "st_done";
      li t0 mstatus_mprv;
      csrc C.mstatus t0;
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      j "restore";
      (* ---------------- unknown trap: report and stop -------------- *)
      label "unhandled";
      li t0 Layout.uart;
      li t1 33L;
      (* '!' *)
      sb t1 0L t0;
      li t0 Layout.syscon;
      li t1 0x5555L;
      sw t1 0L t0;
      label "hang";
      j "hang";
      (* ---------------- restore & return ---------------- *)
      label "restore";
    ]
  @ restore_gprs
  @ [ ld sp 16L sp; mret ]

let image ~nharts ~kernel_entry =
  Asm.assemble ~base:Layout.fw_base (program ~nharts ~kernel_entry)
