(** A Zephyr-like RTOS image: an M-mode kernel with no S-mode below.

    The paper virtualizes Zephyr to show a VFM handles firmware that
    *is* the whole software stack: timer-driven cooperative tasks
    running entirely in (v)M-mode. This image arms the CLINT timer,
    services tick interrupts in its own trap handler, runs a task body
    per tick and prints progress — so under Miralis it exercises the
    virtual CLINT, virtual timer interrupts injection and WFI
    emulation with no OS involved. Its "test suite" is the exact
    output string, identical native and virtualized. *)

val ticks : int
(** Number of timer ticks the image runs for. *)

val expected_output : string
(** The UART output of a successful run. *)

val image : nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list
(** [kernel_entry] is ignored — this firmware never leaves M-mode. *)
