(** The "closed firmware" experiment (paper §8.2).

    For the Star64 the paper's authors had no firmware sources: they
    extracted the image from flash and ran the raw bytes under
    Miralis. This module reproduces that workflow: it exposes a
    firmware image *only as bytes* — a flash dump with no symbol
    information — which the harness loads and virtualizes without any
    knowledge of its internals. (The dump is produced by building the
    vendor's firmware once and throwing the metadata away, exactly the
    information a flash readout provides.) *)

val flash_dump : nharts:int -> kernel_entry:int64 -> bytes
(** The raw firmware image as read from flash. *)

val size_kib : nharts:int -> kernel_entry:int64 -> int

val image : nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list
(** Loader-compatible view: the bytes with an empty symbol table. *)
