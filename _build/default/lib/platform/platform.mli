(** Evaluation platform models (paper Table 3).

    Each platform bundles the machine configuration (hart count,
    misaligned-access behaviour, time-CSR availability, PMP budget,
    custom CSRs) with the calibrated cost model. The VisionFive 2 and
    Premier P550 mirror the paper's two boards; the Star64 stands in
    for the closed-firmware experiment; qemu-virt models an RVA23-class
    CPU (Sstc + time CSR) for the "no offload needed" projection. *)

type t = {
  name : string;
  vendor : string;
  core : string;
  nharts : int;
  freq_mhz : int;
  ram_gb : int;  (** reported hardware RAM (simulated window is smaller) *)
  kernel_version : string;
  machine : Mir_rv.Machine.config;
  cost : Miralis.Cost.t;
  custom_csrs : int list;  (** platform CSRs the VFM explicitly allows *)
}

val visionfive2 : t
val premier_p550 : t
val star64 : t
val qemu_virt : t
val all : t list

val by_name : string -> t option

val ns_of_cycles : t -> int64 -> float
(** Convert simulated cycles to nanoseconds at the platform clock. *)

val us_of_cycles : t -> int64 -> float
val seconds_of_cycles : t -> int64 -> float
