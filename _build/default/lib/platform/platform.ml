module Machine = Mir_rv.Machine
module Csr_spec = Mir_rv.Csr_spec
module Cost = Miralis.Cost

type t = {
  name : string;
  vendor : string;
  core : string;
  nharts : int;
  freq_mhz : int;
  ram_gb : int;
  kernel_version : string;
  machine : Machine.config;
  cost : Cost.t;
  custom_csrs : int list;
}

let base_machine ~nharts ~csr =
  {
    Machine.default_config with
    Machine.nharts;
    csr_config = csr;
    (* mtime runs at a few MHz relative to the core clock, like the
       boards' 4 MHz timebase. *)
    cycles_per_tick = 100;
  }

(* VisionFive 2: calibrated so the Table 4 microbenchmarks land at
   483-cycle instruction emulation and a ~2.7k-cycle world switch:
   trap(140) + entry(30) + emulate(203) + exit(110) = 483. *)
let vf2_cost =
  {
    Cost.trap_entry = 30;
    trap_exit = 110;
    emulate_instr = 203;
    world_switch = 330;
    tlb_flush = 150;
    vclint_access = 240;
    offload_time_read = 40;
    offload_set_timer = 90;
    offload_ipi = 140;
    offload_rfence = 170;
    offload_misaligned = 260;
  }

let visionfive2 =
  {
    name = "visionfive2";
    vendor = "StarFive";
    core = "U74 (in-order)";
    nharts = 4;
    freq_mhz = 1500;
    ram_gb = 4;
    kernel_version = "5.15";
    machine =
      base_machine ~nharts:4
        ~csr:
          {
            Csr_spec.default_config with
            Csr_spec.pmp_count = 8;
            mvendorid = 0x489L;
            marchid = 0x8000000000000007L;
          };
    cost = vf2_cost;
    custom_csrs = [];
  }

(* Premier P550: out-of-order core — cheaper emulation work per
   instruction (271 cycles total) but costlier world switches (4098
   round trip, bigger structures to flush):
   trap(90) + entry(20) + emulate(91) + exit(70) = 271;
   round trip = 90+20+2*(ws+tlb)+271+70 = 4098 -> ws+tlb = 1823. *)
let p550_cost =
  {
    Cost.trap_entry = 20;
    trap_exit = 70;
    emulate_instr = 91;
    world_switch = 1250;
    tlb_flush = 300;
    vclint_access = 180;
    offload_time_read = 30;
    offload_set_timer = 70;
    offload_ipi = 110;
    offload_rfence = 140;
    offload_misaligned = 200;
  }

(* The P550 exposes four documented custom CSRs for speculation and
   error-reporting control; Miralis allows writes on this platform. *)
let p550_custom =
  Mir_rv.Csr_addr.[ custom0; custom1; custom2; custom3 ]

let premier_p550 =
  {
    name = "premier-p550";
    vendor = "SiFive";
    core = "P550 (out-of-order)";
    nharts = 4;
    freq_mhz = 1800;
    ram_gb = 16;
    kernel_version = "6.6";
    machine =
      {
        (base_machine ~nharts:4
           ~csr:
             {
               Csr_spec.default_config with
               Csr_spec.pmp_count = 8;
               has_h = true;
               custom_csrs = p550_custom;
               mvendorid = 0x489L;
               marchid = 0x8000000000000008L;
             })
        with
        Machine.trap_penalty = 90;
        xret_penalty = 70;
      };
    cost = p550_cost;
    custom_csrs = p550_custom;
  }

let star64 =
  {
    visionfive2 with
    name = "star64";
    vendor = "Pine64";
    core = "U74 (in-order)";
    ram_gb = 8;
    kernel_version = "5.15";
  }

(* An RVA23-profile machine: implements the time CSR and Sstc, so the
   hot traps never reach M-mode at all (paper §3.4's projection). *)
let qemu_virt =
  {
    name = "qemu-virt";
    vendor = "QEMU";
    core = "rv64 virt";
    nharts = 4;
    freq_mhz = 1000;
    ram_gb = 8;
    kernel_version = "6.6";
    machine =
      base_machine ~nharts:4
        ~csr:
          {
            Csr_spec.default_config with
            Csr_spec.pmp_count = 16;
            has_sstc = true;
            has_time_csr = true;
            has_h = true;
          };
    cost = vf2_cost;
    custom_csrs = [];
  }

let all = [ visionfive2; premier_p550; star64; qemu_virt ]
let by_name n = List.find_opt (fun p -> p.name = n) all

let ns_of_cycles p cycles =
  Int64.to_float cycles /. (float_of_int p.freq_mhz /. 1000.0)

let us_of_cycles p cycles = ns_of_cycles p cycles /. 1000.0
let seconds_of_cycles p cycles = ns_of_cycles p cycles /. 1e9
