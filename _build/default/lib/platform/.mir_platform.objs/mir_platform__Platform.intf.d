lib/platform/platform.mli: Mir_rv Miralis
