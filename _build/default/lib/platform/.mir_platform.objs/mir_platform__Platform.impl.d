lib/platform/platform.ml: Int64 List Mir_rv Miralis
