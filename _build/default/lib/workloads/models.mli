(** Workload models for the paper's micro- and macro-benchmarks.

    Each model compiles to per-hart {!Mir_kernel.Script} programs whose
    *trap mix and rate* reproduce the paper's measurements for that
    application (§8.3: CoreMark-Pro ~11k traps/s, IOzone disk-bound,
    Redis ~272k traps/s, Memcached ~389k traps/s, MySQL mixed, GCC
    compute-bound), scaled to simulator-friendly run lengths. Compute
    blocks execute natively on the guest; every trap is a real
    instruction taking a real M-mode trap. *)

type spec = {
  name : string;
  ops : int;  (** operation count for throughput *)
  scripts : Mir_kernel.Script.op list list;  (** one per hart *)
}

(* -- Microbenchmarks ------------------------------------------------ *)

val coremark_kernels : string list
(** The nine CoreMark-Pro member benchmarks. *)

val coremark : kernel:string -> spec
(** CPU-bound, all four harts; compute-heavy with rdtime timestamps
    and a 100 Hz tick. *)

val iozone : write:bool -> record_kib:int -> records:int -> spec
(** O_DIRECT-style sequential disk records via the block device. *)

val memcached_latency : requests:int -> spec
(** Closed-loop request stream with per-request cycle stamps on hart 0
    (all harts serve requests, like the 4-thread memcached). *)

(* -- Application benchmarks (Fig. 13) ------------------------------- *)

val redis : ops:int -> spec
(** Single-threaded YCSB-A-style mix, ~272k traps/s. *)

val memcached : ops:int -> spec
(** Four-thread key-value serving, ~389k traps/s. *)

val mysql : ops:int -> spec
(** Mixed CPU/disk/timer OLTP-style transactions. *)

val gcc : ops:int -> spec
(** Compute-dominated compile job; almost no firmware traps. *)

(* -- Table 5 loops -------------------------------------------------- *)

val rdtime_loop : n:int -> spec
val ipi_loop : n:int -> spec

(* -- RV8 (Fig. 14) --------------------------------------------------- *)

val rv8_apps : (string * int64) list
(** The RV8 member benchmarks and their iteration counts. *)

val rv8_script : enclave:bool -> index:int -> Mir_kernel.Script.op list
(** One app run, inside a Keystone enclave or as a native U process.
    Requires the app image staged at the descriptor (see
    {!stage_rv8}). *)

val rv8_enclave_base : int64
val rv8_enclave_size : int64

val stage_rv8 : Mir_rv.Machine.t -> index:int -> unit
(** Load the app image and descriptor for [rv8_apps.(index)]. *)
