lib/workloads/engine.ml: Array Int64 Mir_harness Mir_kernel Mir_platform Mir_rv Miralis
