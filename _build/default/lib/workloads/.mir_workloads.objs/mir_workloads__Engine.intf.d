lib/workloads/engine.mli: Mir_harness Mir_kernel Mir_platform Mir_rv Miralis
