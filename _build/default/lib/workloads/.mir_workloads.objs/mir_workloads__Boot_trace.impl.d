lib/workloads/boot_trace.ml: Hashtbl Int64 List Mir_harness Mir_kernel Mir_platform Mir_rv Mir_sbi Miralis Option
