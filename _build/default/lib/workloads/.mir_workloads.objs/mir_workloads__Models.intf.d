lib/workloads/models.mli: Mir_kernel Mir_rv
