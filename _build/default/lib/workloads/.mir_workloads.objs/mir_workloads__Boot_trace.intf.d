lib/workloads/boot_trace.mli: Mir_harness Mir_kernel Mir_platform
