lib/workloads/models.ml: Int64 List Mir_kernel Mir_rv Printf
