(** The workload engine: runs a script-defined workload in a given
    configuration and extracts the measurements the evaluation
    reports.

    Per the paper's own analysis (§3.4), a VFM adds overhead only on
    traps to M-mode: direct execution is untouched. Workloads are
    therefore modelled as per-operation compute blocks (executed
    natively by the guest kernel) interleaved with the real trapping
    operations; the trap *rates* are taken from the paper's
    measurements (11k–389k traps/s depending on workload). *)

type result = {
  mode : Mir_harness.Setup.mode;
  cycles : int64;  (** hart-0 simulated cycles for the run *)
  seconds : float;  (** simulated wall-clock *)
  ops : int;
  throughput : float;  (** ops per simulated second *)
  traps_to_m : int;
  traps_per_sec : float;
  world_switches : int;
  world_switches_per_sec : float;
  offload_hits : int;
}

val run :
  ?policy:Miralis.Policy.t ->
  ?max_instrs:int64 ->
  ?stage:(Mir_rv.Machine.t -> unit) ->
  Mir_platform.Platform.t ->
  Mir_harness.Setup.mode ->
  ops:int ->
  Mir_kernel.Script.op list list ->
  result
(** Boot the system, optionally [stage] extra guest state (disk
    contents, TEE descriptors), run the per-hart scripts to power-off
    and measure. [ops] is the workload's operation count, used for
    throughput. *)

val relative : baseline:result -> result -> float
(** Throughput relative to a baseline (1.0 = parity, >1 faster). *)

val stamps_deltas : Mir_harness.Setup.system -> hart:int -> count:int -> float array
(** Successive cycle-stamp deltas (for latency distributions). *)

val run_with_system :
  ?policy:Miralis.Policy.t ->
  ?max_instrs:int64 ->
  ?stage:(Mir_rv.Machine.t -> unit) ->
  Mir_platform.Platform.t ->
  Mir_harness.Setup.mode ->
  ops:int ->
  Mir_kernel.Script.op list list ->
  result * Mir_harness.Setup.system
(** Like {!run} but also returns the system for further inspection. *)
