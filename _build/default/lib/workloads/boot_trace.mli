(** The Linux-boot trap study (paper Fig. 3) and boot-time comparison.

    Reproduces the measurement behind the fast-path design: the
    distribution of M-mode trap causes over time windows during boot.
    The boot script models three phases — bootloader, early kernel
    initialization (SMP bring-up: IPI and remote-fence heavy), and
    idling — with the five dominant causes of the paper: reading
    [time], programming the timer, misaligned accesses, IPIs and
    remote fences. Wall-clock is scaled: the paper's 500 ms windows
    become 1 ms simulated windows. *)

type cause = Time_read | Set_timer | Misaligned | Ipi | Rfence | Other

val cause_name : cause -> string
val causes : cause list

type window = {
  index : int;
  counts : (cause * int) list;
  total : int;
}

type trace = {
  windows : window list;
  boot_cycles : int64;
  boot_seconds : float;
  world_switches : int;
  traps_per_sec : float;
}

val script : unit -> Mir_kernel.Script.op list list
(** The phased boot workload (one script per hart). *)

val run :
  Mir_platform.Platform.t -> Mir_harness.Setup.mode -> window_ms:float -> trace
(** Boot under the given mode, classifying every OS→M trap into its
    cause and bucketing by simulated time. *)
