module Script = Mir_kernel.Script
module Machine = Mir_rv.Machine

type spec = {
  name : string;
  ops : int;
  scripts : Mir_kernel.Script.op list list;
}

let nharts = 4

(* Repeat a per-op body [n] times using the kernel's loop opcode. *)
let looped body n = body @ [ Script.Loop (Int64.of_int n); Script.End ]
let all_harts script = List.init nharts (fun _ -> script)

(* ------------------------------------------------------------------ *)
(* CoreMark-Pro: nine kernels, all CPU-bound with slightly different  *)
(* working profiles. ~11k traps/s under no-offload in the paper:      *)
(* roughly one rdtime per ~135k cycles plus the 100 Hz tick.          *)
(* ------------------------------------------------------------------ *)

let coremark_kernels =
  [ "cjpeg-rose7"; "core"; "linear_alg"; "loops-all-mid"; "nnet_test";
    "parser"; "radix2"; "sha"; "zip" ]

let coremark_profile = function
  | "cjpeg-rose7" -> (42_000, 8)
  | "core" -> (36_000, 10)
  | "linear_alg" -> (50_000, 8)
  | "loops-all-mid" -> (56_000, 9)
  | "nnet_test" -> (62_000, 7)
  | "parser" -> (31_000, 11)
  | "radix2" -> (48_000, 9)
  | "sha" -> (39_000, 9)
  | "zip" -> (45_000, 8)
  | k -> invalid_arg ("unknown CoreMark-Pro kernel " ^ k)

let coremark ~kernel =
  let compute, iters = coremark_profile kernel in
  let body =
    [ Script.Compute (Int64.of_int compute); Script.Rdtime ]
  in
  {
    name = "coremark-pro/" ^ kernel;
    ops = iters * nharts;
    scripts = all_harts (looped body iters);
  }

(* ------------------------------------------------------------------ *)
(* IOzone: O_DIRECT sequential records through the block device; the  *)
(* kernel timestamps each record like the benchmark's timers do.      *)
(* ------------------------------------------------------------------ *)

let iozone ~write ~record_kib ~records =
  let sectors_per_record = record_kib * 2 (* 512-byte sectors *) in
  (* One script op per sector, bounded for simulation friendliness. *)
  let sectors = min sectors_per_record 16 in
  let body =
    [ Script.Rdtime ]
    @ List.init sectors (fun i ->
          Script.Disk_io { write; sector = 64 + (i mod 256) })
    @ [ Script.Rdtime ]
  in
  {
    name = Printf.sprintf "iozone-%s-%dK" (if write then "write" else "read")
        record_kib;
    ops = records * sectors;
    scripts = [ looped body records ];
  }

(* ------------------------------------------------------------------ *)
(* Key-value stores. Trap rates from §8.3.3: Redis ~272k traps/s      *)
(* (single-threaded), Memcached ~389k traps/s (4 threads). At 1.5 GHz *)
(* that is one trap per ~5.5k / ~3.9k cycles; each request issues two *)
(* rdtime timestamps around its service time.                          *)
(* ------------------------------------------------------------------ *)

let kv_request ~service_iters ~stamp =
  (if stamp then [ Script.Cycle_stamp ] else [])
  @ [
      Script.Rdtime;
      Script.Compute (Int64.of_int service_iters);
      Script.Rdtime;
    ]

(* Request sizes vary (values, hits/misses, pipelining), giving the
   latency its distribution; the shapes repeat deterministically. *)
let kv_request_mix ~stamp =
  List.concat_map
    (fun service_iters -> kv_request ~service_iters ~stamp)
    [ 1200; 1800; 2600; 1400; 3400; 1600; 2100; 900 ]

let memcached_latency ~requests =
  let rounds = max 1 (requests / 8) in
  {
    name = "memcached-latency";
    ops = rounds * 8;
    scripts =
      List.init nharts (fun h ->
          looped (kv_request_mix ~stamp:(h = 0)) (if h = 0 then rounds else rounds / 2));
  }

let redis ~ops =
  {
    name = "redis";
    ops;
    scripts = [ looped (kv_request ~service_iters:2600 ~stamp:false) ops ];
  }

let memcached ~ops =
  {
    name = "memcached";
    ops = ops * nharts;
    scripts =
      all_harts (looped (kv_request ~service_iters:1800 ~stamp:false) ops);
  }

(* MySQL: OLTP read/write transactions — compute, timestamps, a disk
   access every few transactions, a timer re-arm every batch. *)
let mysql ~ops =
  let txn i =
    [ Script.Rdtime; Script.Compute 6000L; Script.Rdtime ]
    @ (if i mod 4 = 0 then
         [ Script.Disk_io { write = i mod 8 = 0; sector = 128 + i } ]
       else [])
    @ if i mod 32 = 0 then [ Script.Set_timer 4000L ] else []
  in
  let body = List.concat (List.init 8 txn) in
  {
    name = "mysql";
    ops = ops * nharts;
    scripts = all_harts (looped body (max 1 (ops / 8)));
  }

(* GCC: long native compute with only the periodic scheduler tick. *)
let gcc ~ops =
  let body = [ Script.Compute 120_000L; Script.Rdtime ] in
  {
    name = "gcc";
    ops = ops * nharts;
    scripts = all_harts (looped body ops);
  }

(* ------------------------------------------------------------------ *)
(* Table 5 tight loops                                                 *)
(* ------------------------------------------------------------------ *)

let rdtime_loop ~n =
  {
    name = "rdtime-loop";
    ops = n;
    scripts = [ looped [ Script.Rdtime ] n ];
  }

let ipi_loop ~n =
  {
    name = "ipi-loop";
    ops = n;
    scripts = [ looped [ Script.Ipi_self ] n ];
  }

(* ------------------------------------------------------------------ *)
(* RV8 enclave benchmarks (Fig. 14)                                   *)
(* ------------------------------------------------------------------ *)

let rv8_apps =
  [
    ("aes", 24_000L);
    ("bigint", 40_000L);
    ("dhrystone", 20_000L);
    ("miniz", 32_000L);
    ("norx", 26_000L);
    ("primes", 44_000L);
    ("qsort", 28_000L);
    ("sha512", 36_000L);
  ]

let rv8_enclave_base = 0x80800000L
let rv8_enclave_size = 4096L

let stage_rv8 m ~index =
  let _, iters = List.nth rv8_apps index in
  Machine.load_program m rv8_enclave_base
    (Mir_kernel.Uapp.image ~base:rv8_enclave_base ~iters);
  Script.write_descriptor m ~index:0 ~base:rv8_enclave_base
    ~size:rv8_enclave_size ~entry:rv8_enclave_base

let rv8_script ~enclave ~index =
  ignore index;
  [
    Script.Set_timer 2000L;
    (if enclave then Script.Enclave_round 0L else Script.Uproc_round 0L);
    Script.End;
  ]
