(** Table reproductions: Table 1 (LoC), Table 2 (verification times),
    Table 3 (platforms), Table 4 (operation costs), Table 5
    (timer/IPI costs). *)

val table1 : unit -> unit
val table2 : ?quick:bool -> unit -> unit
val table3 : unit -> unit
val table4 : unit -> unit
val table5 : ?n:int -> unit -> unit
