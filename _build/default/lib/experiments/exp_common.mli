(** Shared helpers for the experiment drivers.

    Every experiment prints a paper-style table plus a "paper reports"
    reference line so the output can be compared to the published
    numbers directly (EXPERIMENTS.md records both). *)

val section : string -> unit
(** Print an experiment header. *)

val paper_note : string -> unit
(** Print the "paper reports: ..." reference line. *)

val modes : Mir_harness.Setup.mode list
(** Native, Miralis, Miralis no-offload — the paper's three
    configurations. *)

val mode_name : Mir_harness.Setup.mode -> string

val f2 : float -> string
val f1 : float -> string
val f3 : float -> string
val ns : float -> string
(** Format a nanosecond quantity (switches to µs when large). *)

val rel : float -> string
(** Format a relative score like "0.98x". *)
