(** Figure reproductions: Fig. 3 (boot trap study), Fig. 10
    (CoreMark-Pro), Fig. 11 (IOzone), Fig. 12 (Memcached latency),
    Fig. 13 (application benchmarks), Fig. 14 (Keystone RV8), plus the
    boot-time comparison and the Q1/Q4 demonstrations. *)

val fig3 : unit -> unit
val fig10 : ?scale:int -> unit -> unit
val fig11 : unit -> unit
val fig12 : ?requests:int -> unit -> unit
val fig13 : ?scale:int -> unit -> unit
val fig14 : unit -> unit
val boot_time : unit -> unit

val sstc_projection : unit -> unit
(** The §3.4/§8.3.3 projection: on an RVA23-class CPU (time CSR +
    Sstc) the hot traps never reach M-mode, removing the need for fast
    path offloading. *)

val q1 : unit -> unit
val q4 : unit -> unit
