let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let paper_note s =
  (* collapse whitespace runs from multi-line string literals *)
  let b = Buffer.create (String.length s) in
  let last_space = ref false in
  String.iter
    (fun c ->
      let is_sp = c = ' ' || c = '\n' || c = '\t' in
      if is_sp then begin
        if not !last_space then Buffer.add_char b ' ';
        last_space := true
      end
      else begin
        Buffer.add_char b c;
        last_space := false
      end)
    s;
  Printf.printf "paper reports: %s\n" (Buffer.contents b)

let modes =
  Mir_harness.Setup.[ Native; Virtualized; Virtualized_no_offload ]

let mode_name = Mir_harness.Setup.mode_name
let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let f3 v = Printf.sprintf "%.3f" v

let ns v =
  if v >= 10_000.0 then Printf.sprintf "%.2f us" (v /. 1000.0)
  else Printf.sprintf "%.0f ns" v

let rel v = Printf.sprintf "%.3fx" v
