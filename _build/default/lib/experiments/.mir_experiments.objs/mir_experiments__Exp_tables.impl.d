lib/experiments/exp_tables.ml: Array Exp_common Int64 List Mir_firmware Mir_harness Mir_kernel Mir_platform Mir_rv Mir_util Mir_verif Mir_workloads Miralis Option Printf
