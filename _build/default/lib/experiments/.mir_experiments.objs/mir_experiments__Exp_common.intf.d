lib/experiments/exp_common.mli: Mir_harness
