lib/experiments/exp_common.ml: Buffer Mir_harness Printf String
