lib/experiments/exp_figs.mli:
