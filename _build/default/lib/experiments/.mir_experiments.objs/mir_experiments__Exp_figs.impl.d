lib/experiments/exp_figs.ml: Array Exp_common Int64 List Mir_firmware Mir_harness Mir_kernel Mir_platform Mir_policies Mir_rv Mir_util Mir_workloads Printf
