module Tablefmt = Mir_util.Tablefmt
module Stats = Mir_util.Stats
module Setup = Mir_harness.Setup
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine
module Script = Mir_kernel.Script
module Models = Mir_workloads.Models
module Engine = Mir_workloads.Engine
module Boot_trace = Mir_workloads.Boot_trace
open Exp_common

let vf2 = Platform.visionfive2
let p550 = Platform.premier_p550

(* ------------------------------------------------------------------ *)
(* Fig. 3: trap causes over boot windows                               *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Figure 3: M-mode trap causes during boot (VisionFive 2)";
  paper_note
    "five causes account for 99.98% of traps; ~5500 traps/s during boot; \
     1.17 world switches/s with offload";
  let trace = Boot_trace.run vf2 Setup.Native ~window_ms:1.0 in
  let headers =
    "window (1 ms)"
    :: List.map Boot_trace.cause_name Boot_trace.causes
    @ [ "total" ]
  in
  let rows =
    List.filter_map
      (fun (w : Boot_trace.window) ->
        if w.Boot_trace.total = 0 && w.Boot_trace.index > 0 then None
        else
          Some
            (string_of_int w.Boot_trace.index
             :: List.map (fun (_, n) -> string_of_int n) w.Boot_trace.counts
            @ [ string_of_int w.Boot_trace.total ]))
      trace.Boot_trace.windows
  in
  Tablefmt.print ~headers rows;
  let totals =
    List.map
      (fun c ->
        ( c,
          List.fold_left
            (fun acc (w : Boot_trace.window) ->
              acc + List.assoc c w.Boot_trace.counts)
            0 trace.Boot_trace.windows ))
      Boot_trace.causes
  in
  let all = List.fold_left (fun a (_, n) -> a + n) 0 totals in
  let five =
    List.fold_left
      (fun a (c, n) -> if c = Boot_trace.Other then a else a + n)
      0 totals
  in
  Printf.printf
    "top-five causes: %.2f%% of %d traps | %.0f traps/s during boot\n"
    (100. *. float_of_int five /. float_of_int (max 1 all))
    all trace.Boot_trace.traps_per_sec;
  (* offload ablation: world switches during the same boot *)
  let t_off = Boot_trace.run vf2 Setup.Virtualized ~window_ms:1.0 in
  let t_no = Boot_trace.run vf2 Setup.Virtualized_no_offload ~window_ms:1.0 in
  Printf.printf
    "world switches: %d with offload vs %d without, over a boot %.0fx \
     shorter than the paper's 48s (paper: 1.17/s vs thousands/s)\n"
    t_off.Boot_trace.world_switches t_no.Boot_trace.world_switches
    (48. /. t_off.Boot_trace.boot_seconds)

(* ------------------------------------------------------------------ *)
(* Relative-performance helpers                                        *)
(* ------------------------------------------------------------------ *)

let run_spec platform mode (spec : Models.spec) =
  Engine.run platform mode ~ops:spec.Models.ops spec.Models.scripts

let relative_row platform spec =
  let native = run_spec platform Setup.Native spec in
  let mir = run_spec platform Setup.Virtualized spec in
  let noff = run_spec platform Setup.Virtualized_no_offload spec in
  ( spec.Models.name,
    Engine.relative ~baseline:native mir,
    Engine.relative ~baseline:native noff,
    native )

let fig10 ?(scale = 1) () =
  ignore scale;
  section "Figure 10: relative CoreMark-Pro scores (VisionFive 2)";
  paper_note "Miralis ~1.00x of native; no-offload ~1.9% overhead";
  let rows =
    List.map
      (fun kernel ->
        let name, m, n, nat = relative_row vf2 (Models.coremark ~kernel) in
        [ name; rel m; rel n;
          Printf.sprintf "%.0f" nat.Engine.traps_per_sec ])
      Models.coremark_kernels
  in
  Tablefmt.print
    ~headers:[ "Kernel"; "Miralis"; "no-offload"; "native traps/s" ]
    rows

let fig11 () =
  section "Figure 11: IOzone throughput, 128K records (VisionFive 2)";
  paper_note "Miralis at parity (write slightly faster); no-offload ~10.6% down";
  let throughput (r : Engine.result) =
    (* 512-byte sectors *)
    float_of_int r.Engine.ops *. 512. /. r.Engine.seconds /. 1e6
  in
  let rows =
    List.map
      (fun write ->
        let spec = Models.iozone ~write ~record_kib:128 ~records:24 in
        let results =
          List.map (fun mode -> run_spec vf2 mode spec) modes
        in
        (if write then "write" else "read")
        :: List.map (fun r -> Printf.sprintf "%.1f MB/s" (throughput r))
             results)
      [ false; true ]
  in
  Tablefmt.print
    ~headers:("IOzone" :: List.map mode_name modes)
    rows

let fig12 ?(requests = 800) () =
  section "Figure 12: Memcached latency distribution (VisionFive 2)";
  paper_note
    "Miralis slightly better below p95 (median 263 vs 279 ns SBI path); \
     no-offload ~2x latency";
  let percentiles = [ 25.; 50.; 75.; 90.; 95.; 99. ] in
  let series =
    List.map
      (fun mode ->
        let spec = Models.memcached_latency ~requests in
        let _r, sys =
          Engine.run_with_system vf2 mode ~ops:spec.Models.ops
            spec.Models.scripts
        in
        let deltas = Engine.stamps_deltas sys ~hart:0 ~count:requests in
        let st = Stats.create () in
        Array.iter
          (fun d -> Stats.add st (Platform.ns_of_cycles vf2 (Int64.of_float d)))
          deltas;
        (mode_name mode, List.map (fun p -> Stats.percentile st p) percentiles))
      modes
  in
  print_string
    (Tablefmt.series_chart
       ~labels:(List.map (fun p -> Printf.sprintf "p%.0f (ns)" p) percentiles)
       series)

let fig13 ?(scale = 1) () =
  ignore scale;
  section "Figure 13: application benchmarks (relative to native)";
  paper_note
    "Miralis >= native everywhere (up to +7.6% VF2 / +1.2% P550 on \
     network-heavy); no-offload up to 259% overhead on Redis/P550";
  let workloads =
    [
      Models.redis ~ops:300;
      Models.memcached ~ops:150;
      Models.mysql ~ops:80;
      Models.gcc ~ops:5;
    ]
  in
  List.iter
    (fun (platform : Platform.t) ->
      Printf.printf "\n[%s]\n" platform.Platform.name;
      let rows =
        List.map
          (fun spec ->
            let name, m, n, nat = relative_row platform spec in
            [ name; rel m; rel n;
              Printf.sprintf "%.0f" nat.Engine.traps_per_sec ])
          workloads
      in
      Tablefmt.print
        ~headers:[ "Workload"; "Miralis"; "no-offload"; "native traps/s" ]
        rows)
    [ vf2; p550 ]

(* ------------------------------------------------------------------ *)
(* Fig. 14: Keystone RV8                                               *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  section "Figure 14: RV8 in Keystone enclaves (VisionFive 2)";
  paper_note "average ~1% overhead inside enclaves, as in Keystone";
  let rows =
    List.mapi
      (fun index (name, _) ->
        let policy, _ = Mir_policies.Policy_keystone.create () in
        let run ~enclave =
          Engine.run ~policy
            ~stage:(fun m -> Models.stage_rv8 m ~index)
            vf2 Setup.Virtualized ~ops:1
            [ Models.rv8_script ~enclave ~index ]
        in
        let native = run ~enclave:false in
        let enclave = run ~enclave:true in
        let relative =
          Int64.to_float native.Engine.cycles
          /. Int64.to_float enclave.Engine.cycles
        in
        [ name; rel relative ])
      Models.rv8_apps
  in
  Tablefmt.print ~headers:[ "RV8 benchmark"; "enclave vs native" ] rows

(* ------------------------------------------------------------------ *)
(* Boot time                                                           *)
(* ------------------------------------------------------------------ *)

let boot_time () =
  section "Boot time (scaled boot workload, VisionFive 2)";
  paper_note "native 47.5s, Miralis 48.0s (1%), no-offload 61.3s (29%)";
  let results =
    List.map
      (fun mode -> (mode, Boot_trace.run vf2 mode ~window_ms:1.0))
      modes
  in
  let base =
    match results with (_, t) :: _ -> t.Boot_trace.boot_seconds | [] -> 1.
  in
  Tablefmt.print ~headers:[ "Configuration"; "boot time"; "overhead" ]
    (List.map
       (fun (mode, t) ->
         [
           mode_name mode;
           Printf.sprintf "%.2f ms" (t.Boot_trace.boot_seconds *. 1e3);
           Printf.sprintf "%+.1f%%"
             (100. *. ((t.Boot_trace.boot_seconds /. base) -. 1.));
         ])
       results)

(* ------------------------------------------------------------------ *)
(* Sstc projection                                                     *)
(* ------------------------------------------------------------------ *)

let sstc_projection () =
  section "Projection: RVA23-class hardware (time CSR + Sstc)";
  paper_note
    "implementing the time CSR plus Sstc would remove 96.5% of all world      switches on the application benchmarks; fast path offloading is not      required on RVA23 CPUs";
  let workloads =
    [ Models.redis ~ops:200; Models.memcached ~ops:100; Models.gcc ~ops:4 ]
  in
  let rows =
    List.map
      (fun (spec : Models.spec) ->
        (* per-op traps reaching Miralis, current boards vs RVA23 *)
        let per_op (r : Engine.result) =
          float_of_int r.Engine.traps_to_m /. float_of_int r.Engine.ops
        in
        let now = run_spec vf2 Setup.Virtualized spec in
        let rva23 = run_spec Platform.qemu_virt Setup.Virtualized spec in
        let removed =
          100. *. (1. -. (per_op rva23 /. max 1e-9 (per_op now)))
        in
        [
          spec.Models.name;
          Printf.sprintf "%.2f" (per_op now);
          Printf.sprintf "%.2f" (per_op rva23);
          Printf.sprintf "%.1f%%" removed;
        ])
      workloads
  in
  Tablefmt.print
    ~headers:
      [ "Workload"; "traps/op (VF2-class)"; "traps/op (RVA23)"; "removed" ]
    rows;
  print_endline
    "(time-CSR reads execute natively on RVA23; the residual traps are      SBI set_timer calls, which Sstc's stimecmp would also eliminate)"

(* ------------------------------------------------------------------ *)
(* Q1: virtualizing unmodified firmware                                *)
(* ------------------------------------------------------------------ *)

let q1 () =
  section "Q1: can Miralis virtualize unmodified firmware?";
  paper_note
    "two vendor firmware (VF2, P550), RustSBI, Zephyr, and the opaque \
     Star64 image all run unmodified";
  let smoke =
    [
      Script.Putchar 'o'; Script.Rdtime; Script.Set_timer 100L;
      Script.Tick_wfi 50L; Script.Ipi_self; Script.Misaligned_load;
      Script.Putchar 'k'; Script.End;
    ]
  in
  let sbi_check name firmware platform =
    let observe mode =
      let sys = Setup.create ~firmware platform mode in
      Setup.run_scripts ~max_instrs:30_000_000L sys [ smoke ];
      ( Setup.uart_output sys,
        sys.Setup.machine.Machine.poweroff,
        Script.sti_count sys.Setup.machine ~hart:0 >= 1L )
    in
    let n = observe Setup.Native and v = observe Setup.Virtualized in
    let ok = n = v && (let u, p, t = v in u = "ok" && p && t) in
    [ name; platform.Platform.name; (if ok then "PASS" else "FAIL") ]
  in
  let zephyr_check platform =
    let run mode =
      let sys =
        Setup.create ~firmware:Mir_firmware.Zephyr_like.image platform mode
      in
      Setup.run_scripts ~max_instrs:30_000_000L sys [];
      Setup.uart_output sys
    in
    let ok =
      run Setup.Native = Mir_firmware.Zephyr_like.expected_output
      && run Setup.Virtualized = Mir_firmware.Zephyr_like.expected_output
    in
    [ "Zephyr-like RTOS"; platform.Platform.name;
      (if ok then "PASS" else "FAIL") ]
  in
  Tablefmt.print ~headers:[ "Firmware"; "Platform"; "Virtualized" ]
    [
      sbi_check "MiniSBI (vendor)" Mir_firmware.Minisbi.image vf2;
      sbi_check "MiniSBI (vendor)" Mir_firmware.Minisbi.image p550;
      sbi_check "RustSBI-like" Mir_firmware.Rustsbi_like.image vf2;
      zephyr_check vf2;
      sbi_check "Star64 flash dump" Mir_firmware.Star64.image
        Platform.star64;
    ];
  Printf.printf "Star64 image: %d KiB extracted, no symbols used\n"
    (Mir_firmware.Star64.size_kib ~nharts:4
       ~kernel_entry:Mir_kernel.Interp_kernel.entry)

(* ------------------------------------------------------------------ *)
(* Q4: confidential VMs with the ACE policy                            *)
(* ------------------------------------------------------------------ *)

let q4 () =
  section "Q4: confidential VM via the ACE policy (qemu-virt)";
  paper_note
    "a confidential Linux VM runs under the ACE API with the firmware \
     excluded from the TCB (functional only, as in the paper)";
  let policy, state = Mir_policies.Policy_ace.create () in
  let base = Models.rv8_enclave_base in
  let result =
    Engine.run ~policy
      ~stage:(fun m ->
        Machine.load_program m base
          (Mir_kernel.Uapp.image ~base ~iters:2000L);
        Script.write_descriptor m ~index:0 ~base ~size:4096L ~entry:base)
      Platform.qemu_virt Setup.Virtualized ~ops:1
      [ [ Script.Set_timer 1000L; Script.Cvm_round 0L; Script.End ] ]
  in
  Tablefmt.print ~headers:[ "Metric"; "Value" ]
    [
      [ "vCPU entries"; string_of_int state.Mir_policies.Policy_ace.vcpu_entries ];
      [ "VM exits"; string_of_int state.Mir_policies.Policy_ace.vm_exits ];
      [ "CVM run cycles"; Int64.to_string result.Engine.cycles ];
      [ "world switches"; string_of_int result.Engine.world_switches ];
    ]
