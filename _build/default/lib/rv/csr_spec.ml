module Bits = Mir_util.Bits

type config = {
  pmp_count : int;
  has_sstc : bool;
  has_h : bool;
  has_time_csr : bool;
  custom_csrs : int list;
  force_s_interrupt_delegation : bool;
  mvendorid : int64;
  marchid : int64;
  mimpid : int64;
}

let default_config =
  {
    pmp_count = 8;
    has_sstc = false;
    has_h = false;
    has_time_csr = false;
    custom_csrs = [];
    force_s_interrupt_delegation = false;
    mvendorid = 0L;
    marchid = 0L;
    mimpid = 0L;
  }

type t = {
  name : string;
  read_mask : int64;
  read_or : int64;
  write_mask : int64;
  legalize : old:int64 -> value:int64 -> int64;
  reset : int64;
}

let id_legalize ~old:_ ~value = value

let ro name reset =
  {
    name;
    read_mask = -1L;
    read_or = 0L;
    write_mask = 0L;
    legalize = id_legalize;
    reset;
  }

let rw ?(read_mask = -1L) ?(read_or = 0L) ?(write_mask = -1L)
    ?(legalize = id_legalize) ?(reset = 0L) name =
  { name; read_mask; read_or; write_mask; legalize; reset }

module Mstatus = struct
  let sie = 1
  let mie = 3
  let spie = 5
  let mpie = 7
  let spp = 8
  let mpp_lo = 11
  let mpp_hi = 12
  let mprv = 17
  let sum = 18
  let mxr = 19
  let tvm = 20
  let tw = 21
  let tsr = 22

  let get_mpp v =
    match Priv.of_int (Int64.to_int (Bits.extract v ~lo:mpp_lo ~hi:mpp_hi)) with
    | Some p -> p
    | None -> Priv.U (* reserved encoding never stored: legalized away *)

  let set_mpp v p =
    Bits.insert v ~lo:mpp_lo ~hi:mpp_hi ~value:(Int64.of_int (Priv.to_int p))

  let get_spp v = if Bits.test v spp then Priv.S else Priv.U
  let set_spp v p = Bits.write v spp (p = Priv.S)

  (* SIE, SPIE, SPP, SUM, MXR plus the read-only UXL field. *)
  let sstatus_mask =
    List.fold_left
      (fun acc b -> Bits.set acc b)
      0L [ sie; spie; spp; sum; mxr ]

  let write_mask =
    List.fold_left
      (fun acc b -> Bits.set acc b)
      0L
      [ sie; mie; spie; mpie; spp; mprv; sum; mxr; tvm; tw; tsr ]
    |> fun m -> Int64.logor m (Int64.shift_left 3L mpp_lo)

  (* UXL = SXL = 2 (64-bit), hardwired. *)
  let read_or = Int64.logor (Int64.shift_left 2L 32) (Int64.shift_left 2L 34)

  let legalize ~old ~value =
    (* MPP: the reserved encoding 2 is WARL'd back to the old value. *)
    if Bits.extract value ~lo:mpp_lo ~hi:mpp_hi = 2L then
      Bits.insert value ~lo:mpp_lo ~hi:mpp_hi
        ~value:(Bits.extract old ~lo:mpp_lo ~hi:mpp_hi)
    else value
end

module Irq = struct
  let ssip = Bits.set 0L 1
  let msip = Bits.set 0L 3
  let stip = Bits.set 0L 5
  let mtip = Bits.set 0L 7
  let seip = Bits.set 0L 9
  let meip = Bits.set 0L 11
  let s_mask = Int64.logor ssip (Int64.logor stip seip)
  let m_mask = Int64.logor msip (Int64.logor mtip meip)
end

let misa_value config =
  let ext c = Int64.shift_left 1L (Char.code c - Char.code 'a') in
  let base = Int64.shift_left 2L 62 in
  let exts =
    List.fold_left
      (fun acc c -> Int64.logor acc (ext c))
      0L
      ([ 'a'; 'i'; 'm'; 's'; 'u' ] @ if config.has_h then [ 'h' ] else [])
  in
  Int64.logor base exts

(* Delegatable exceptions: all standard synchronous causes except
   ecall-from-M (11). *)
let medeleg_mask = 0xB3FFL
let mideleg_mask = Irq.s_mask

let epc_legalize ~old:_ ~value = Bits.clear (Bits.clear value 0) 1

let tvec_legalize ~old ~value =
  (* mode (bits 1:0) is WARL over {0 direct, 1 vectored}. *)
  if Bits.extract value ~lo:0 ~hi:1 > 1L then
    Bits.insert value ~lo:0 ~hi:1 ~value:(Bits.extract old ~lo:0 ~hi:1)
  else value

let satp_legalize ~old ~value =
  (* mode (63:60) is WARL over {0 bare, 8 Sv39}: other modes leave the
     whole register unchanged, matching common hardware. *)
  let mode = Bits.extract value ~lo:60 ~hi:63 in
  if mode = 0L || mode = 8L then value else old

(* pmpcfg legalization: per entry byte, honour the lock bit, clear the
   reserved W=1/R=0 combination (one of the paper's reported PMP
   virtualization bugs), and zero the reserved bits 5:6. *)
let pmpcfg_byte_legalize ~old_byte ~new_byte =
  if old_byte land 0x80 <> 0 then old_byte (* locked: write ignored *)
  else
    let b = new_byte land 0x9F (* clear reserved bits 5:6 *) in
    let b = if b land 0x3 = 0x2 then b land lnot 0x2 else b (* W=1,R=0 *) in
    b

let pmpcfg_legalize ~entries_in_reg ~old ~value =
  let result = ref 0L in
  for i = 0 to 7 do
    let shift = 8 * i in
    let old_byte = Int64.to_int (Bits.extract old ~lo:shift ~hi:(shift + 7)) in
    let new_byte =
      Int64.to_int (Bits.extract value ~lo:shift ~hi:(shift + 7))
    in
    let byte =
      if i < entries_in_reg then pmpcfg_byte_legalize ~old_byte ~new_byte
      else 0
    in
    result := Bits.insert !result ~lo:shift ~hi:(shift + 7)
        ~value:(Int64.of_int byte)
  done;
  !result

let pmpaddr_mask = Bits.mask 54

let counteren_mask = 0xFFFFFFFFL

let find config addr =
  let some = Option.some in
  let n_pmp = config.pmp_count in
  if Csr_addr.is_pmpcfg addr then begin
    let reg = addr - 0x3A0 in
    if reg mod 2 <> 0 then None (* odd pmpcfg do not exist on RV64 *)
    else
      let first_entry = reg * 4 in
      let entries_in_reg = max 0 (min 8 (n_pmp - first_entry)) in
      if first_entry >= 64 then None
      else
        some
          (rw (Csr_addr.name addr)
             ~legalize:(fun ~old ~value ->
               pmpcfg_legalize ~entries_in_reg ~old ~value))
  end
  else if Csr_addr.is_pmpaddr addr then begin
    let idx = addr - 0x3B0 in
    if idx >= 64 then None
    else
      (* Addresses above the implemented count exist read-only-zero up
         to 64 per spec; we model only implemented ones for clarity. *)
      if idx >= n_pmp then None
      else some (rw (Csr_addr.name addr) ~write_mask:pmpaddr_mask)
  end
  else if List.mem addr config.custom_csrs then
    some (rw (Csr_addr.name addr))
  else if addr = Csr_addr.mstatus then
    some
      (rw "mstatus" ~write_mask:Mstatus.write_mask ~read_or:Mstatus.read_or
         ~legalize:Mstatus.legalize)
  else if addr = Csr_addr.misa then some (ro "misa" (misa_value config))
  else if addr = Csr_addr.medeleg then
    some (rw "medeleg" ~write_mask:medeleg_mask)
  else if addr = Csr_addr.mideleg then begin
    if config.force_s_interrupt_delegation then
      some
        (rw "mideleg" ~write_mask:mideleg_mask ~reset:Irq.s_mask
           ~legalize:(fun ~old:_ ~value -> Int64.logor value Irq.s_mask))
    else some (rw "mideleg" ~write_mask:mideleg_mask)
  end
  else if addr = Csr_addr.mie then
    some (rw "mie" ~write_mask:(Int64.logor Irq.s_mask Irq.m_mask))
  else if addr = Csr_addr.mtvec then some (rw "mtvec" ~legalize:tvec_legalize)
  else if addr = Csr_addr.mcounteren then
    some (rw "mcounteren" ~write_mask:counteren_mask)
  else if addr = Csr_addr.menvcfg then
    (* Only STCE (bit 63, with Sstc) and FIOM (bit 0) are writable. *)
    let m = if config.has_sstc then Bits.set 1L 63 else 1L in
    some (rw "menvcfg" ~write_mask:m)
  else if addr = Csr_addr.mcountinhibit then
    some (rw "mcountinhibit" ~write_mask:0x5L)
  else if addr = Csr_addr.mscratch then some (rw "mscratch")
  else if addr = Csr_addr.mepc then some (rw "mepc" ~legalize:epc_legalize)
  else if addr = Csr_addr.mcause then some (rw "mcause")
  else if addr = Csr_addr.mtval then some (rw "mtval")
  else if addr = Csr_addr.mip then
    (* Only the S-level bits are directly writable by software. *)
    some (rw "mip" ~write_mask:Irq.s_mask)
  else if addr = Csr_addr.mcycle then some (rw "mcycle")
  else if addr = Csr_addr.minstret then some (rw "minstret")
  else if addr = Csr_addr.mvendorid then some (ro "mvendorid" config.mvendorid)
  else if addr = Csr_addr.marchid then some (ro "marchid" config.marchid)
  else if addr = Csr_addr.mimpid then some (ro "mimpid" config.mimpid)
  else if addr = Csr_addr.mhartid then some (ro "mhartid" 0L)
  else if addr = Csr_addr.mconfigptr then some (ro "mconfigptr" 0L)
  else if addr = Csr_addr.stvec then some (rw "stvec" ~legalize:tvec_legalize)
  else if addr = Csr_addr.scounteren then
    some (rw "scounteren" ~write_mask:counteren_mask)
  else if addr = Csr_addr.senvcfg then some (rw "senvcfg" ~write_mask:1L)
  else if addr = Csr_addr.sscratch then some (rw "sscratch")
  else if addr = Csr_addr.sepc then some (rw "sepc" ~legalize:epc_legalize)
  else if addr = Csr_addr.scause then some (rw "scause")
  else if addr = Csr_addr.stval then some (rw "stval")
  else if addr = Csr_addr.satp then some (rw "satp" ~legalize:satp_legalize)
  else if addr = Csr_addr.stimecmp then
    if config.has_sstc then some (rw "stimecmp") else None
  else if
    addr = Csr_addr.sstatus || addr = Csr_addr.sie || addr = Csr_addr.sip
  then
    (* Views over mstatus/mie/mip: handled by the CSR file, but they
       must exist in the address map. Masks here describe the view. *)
    some (rw (Csr_addr.name addr))
  else if config.has_h then begin
    if addr = Csr_addr.hstatus then some (rw "hstatus" ~write_mask:0x3007E0E2L)
    else if addr = Csr_addr.hedeleg then
      some (rw "hedeleg" ~write_mask:medeleg_mask)
    else if addr = Csr_addr.hideleg then
      some (rw "hideleg" ~write_mask:0x444L)
    else if addr = Csr_addr.hie then some (rw "hie" ~write_mask:0x444L)
    else if addr = Csr_addr.hcounteren then
      some (rw "hcounteren" ~write_mask:counteren_mask)
    else if addr = Csr_addr.hgeie then some (rw "hgeie")
    else if addr = Csr_addr.htval then some (rw "htval")
    else if addr = Csr_addr.hip then some (rw "hip" ~write_mask:0x444L)
    else if addr = Csr_addr.hvip then some (rw "hvip" ~write_mask:0x444L)
    else if addr = Csr_addr.htinst then some (rw "htinst")
    else if addr = Csr_addr.hgatp then some (rw "hgatp" ~legalize:satp_legalize)
    else if addr = Csr_addr.hgeip then some (ro "hgeip" 0L)
    else if addr = Csr_addr.vsstatus then
      some (rw "vsstatus" ~write_mask:Mstatus.write_mask)
    else if addr = Csr_addr.vsie then some (rw "vsie" ~write_mask:Irq.s_mask)
    else if addr = Csr_addr.vstvec then
      some (rw "vstvec" ~legalize:tvec_legalize)
    else if addr = Csr_addr.vsscratch then some (rw "vsscratch")
    else if addr = Csr_addr.vsepc then some (rw "vsepc" ~legalize:epc_legalize)
    else if addr = Csr_addr.vscause then some (rw "vscause")
    else if addr = Csr_addr.vstval then some (rw "vstval")
    else if addr = Csr_addr.vsip then some (rw "vsip" ~write_mask:Irq.s_mask)
    else if addr = Csr_addr.vsatp then
      some (rw "vsatp" ~legalize:satp_legalize)
    else None
  end
  else None

let exists config addr = Option.is_some (find config addr)

let all_addresses config =
  let acc = ref [] in
  for addr = 0xFFF downto 0 do
    if exists config addr then acc := addr :: !acc
  done;
  !acc

let apply_write t ~old ~value =
  let merged =
    Int64.logor
      (Int64.logand old (Int64.lognot t.write_mask))
      (Int64.logand value t.write_mask)
  in
  t.legalize ~old ~value:merged

let apply_read t stored = Int64.logor (Int64.logand stored t.read_mask) t.read_or
