(** Physical Memory Protection: entry decoding and access checks.

    This is the reference [pmpCheck] the paper verifies faithful
    execution against: rules are evaluated in priority order, the first
    entry whose region overlaps the access decides, an access that is
    not fully contained in the matching region fails, and M-mode is
    only constrained by locked entries. *)

(** Address-matching mode of an entry. *)
type amode = Off | Tor | Na4 | Napot

type access = Read | Write | Exec

(** One decoded PMP entry. [addr] is the raw pmpaddr register value
    (physical address bits 55:2). *)
type entry = {
  r : bool;
  w : bool;
  x : bool;
  a : amode;
  l : bool;
  addr : int64;
}

val entry_of_cfg_byte : int -> addr:int64 -> entry
(** Decode a pmpcfg byte plus its pmpaddr register. *)

val cfg_byte_of_entry : entry -> int
(** Re-encode the configuration byte of an entry. *)

val off_entry : entry
(** An all-zero (disabled) entry. *)

val range : prev_addr:int64 -> entry -> (int64 * int64) option
(** [range ~prev_addr e] is the byte range [lo, hi) matched by [e]
    ([prev_addr] is the preceding pmpaddr register, used by TOR), or
    [None] when the entry is off or matches nothing. *)

val napot_encode : base:int64 -> size:int64 -> int64
(** The pmpaddr value for a naturally aligned power-of-two region
    ([size >= 8], [base] aligned to [size]). *)

val tor_encode : int64 -> int64
(** The pmpaddr value whose TOR boundary is the given byte address. *)

(** Result of looking up an access. *)
type verdict =
  | Allowed
  | Denied
  | No_match  (** no entry matched: M-mode allows, S/U denies *)

val lookup :
  entries:entry array -> access -> addr:int64 -> size:int -> verdict
(** Priority-ordered match of an access against the entry list,
    ignoring privilege. *)

val check :
  entries:entry array -> priv:Priv.t -> access -> addr:int64 -> size:int ->
  bool
(** Full check including the M-mode lock rule and the default
    (no-match) rule. [priv] is the *effective* privilege (after
    MPRV). *)

val locked : entry array -> int -> bool
(** [locked entries i] is true iff writes to entry [i]'s configuration
    or address register must be ignored: the entry itself is locked, or
    (for the address register) the next entry is a locked TOR entry. *)

type ranges = {
  items : (int64 * int64 * entry) array;
      (** [lo, hi) byte ranges of active entries, priority order *)
  implemented : bool;  (** at least one PMP entry exists at all *)
}
(** The hot-path representation: {!range} is evaluated once per
    configuration instead of once per access. *)

val precompute : entry array -> ranges

val check_ranges :
  ranges -> priv:Priv.t -> access -> addr:int64 -> size:int -> bool
(** Same verdict as {!check}, using precomputed ranges. *)
