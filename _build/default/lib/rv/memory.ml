type t = { base : int64; data : Bytes.t }

let create ~base ~size = { base; data = Bytes.make size '\000' }
let base t = t.base
let size t = Bytes.length t.data

let in_range t addr len =
  let off = Int64.sub addr t.base in
  off >= 0L && Int64.add off (Int64.of_int len) <= Int64.of_int (Bytes.length t.data)

let offset t addr = Int64.to_int (Int64.sub addr t.base)

let load t addr size =
  let o = offset t addr in
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.get t.data o))
  | 2 -> Int64.of_int (Bytes.get_uint16_le t.data o)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data o)) 0xFFFFFFFFL
  | 8 -> Bytes.get_int64_le t.data o
  | _ -> invalid_arg "Memory.load: size"

let store t addr size v =
  let o = offset t addr in
  match size with
  | 1 -> Bytes.set t.data o (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le t.data o (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le t.data o (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le t.data o v
  | _ -> invalid_arg "Memory.store: size"

let load_bytes t addr len = Bytes.sub t.data (offset t addr) len

let store_bytes t addr b =
  Bytes.blit b 0 t.data (offset t addr) (Bytes.length b)

let fill t addr len c = Bytes.fill t.data (offset t addr) len c
