type t = { ram : Memory.t; mutable devices : Device.t list }

let create ~ram = { ram; devices = [] }
let ram t = t.ram
let add_device t d = t.devices <- t.devices @ [ d ]
let devices t = t.devices

let find_device t addr =
  List.find_opt (fun d -> Device.contains d addr 1) t.devices

let load t addr size =
  if Memory.in_range t.ram addr size then Some (Memory.load t.ram addr size)
  else
    match List.find_opt (fun d -> Device.contains d addr size) t.devices with
    | Some d -> Some (d.Device.load (Int64.sub addr d.Device.base) size)
    | None -> None

let store t addr size v =
  if Memory.in_range t.ram addr size then begin
    Memory.store t.ram addr size v;
    true
  end
  else
    match List.find_opt (fun d -> Device.contains d addr size) t.devices with
    | Some d ->
        d.Device.store (Int64.sub addr d.Device.base) size v;
        true
    | None -> false
