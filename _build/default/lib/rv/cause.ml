type exc =
  | Instr_misaligned
  | Instr_access_fault
  | Illegal_instr
  | Breakpoint
  | Load_misaligned
  | Load_access_fault
  | Store_misaligned
  | Store_access_fault
  | Ecall_from_u
  | Ecall_from_s
  | Ecall_from_m
  | Instr_page_fault
  | Load_page_fault
  | Store_page_fault

type intr =
  | Supervisor_software
  | Machine_software
  | Supervisor_timer
  | Machine_timer
  | Supervisor_external
  | Machine_external

type t = Exception of exc | Interrupt of intr

let exc_code = function
  | Instr_misaligned -> 0
  | Instr_access_fault -> 1
  | Illegal_instr -> 2
  | Breakpoint -> 3
  | Load_misaligned -> 4
  | Load_access_fault -> 5
  | Store_misaligned -> 6
  | Store_access_fault -> 7
  | Ecall_from_u -> 8
  | Ecall_from_s -> 9
  | Ecall_from_m -> 11
  | Instr_page_fault -> 12
  | Load_page_fault -> 13
  | Store_page_fault -> 15

let intr_code = function
  | Supervisor_software -> 1
  | Machine_software -> 3
  | Supervisor_timer -> 5
  | Machine_timer -> 7
  | Supervisor_external -> 9
  | Machine_external -> 11

let exc_of_code = function
  | 0 -> Some Instr_misaligned
  | 1 -> Some Instr_access_fault
  | 2 -> Some Illegal_instr
  | 3 -> Some Breakpoint
  | 4 -> Some Load_misaligned
  | 5 -> Some Load_access_fault
  | 6 -> Some Store_misaligned
  | 7 -> Some Store_access_fault
  | 8 -> Some Ecall_from_u
  | 9 -> Some Ecall_from_s
  | 11 -> Some Ecall_from_m
  | 12 -> Some Instr_page_fault
  | 13 -> Some Load_page_fault
  | 15 -> Some Store_page_fault
  | _ -> None

let intr_of_code = function
  | 1 -> Some Supervisor_software
  | 3 -> Some Machine_software
  | 5 -> Some Supervisor_timer
  | 7 -> Some Machine_timer
  | 9 -> Some Supervisor_external
  | 11 -> Some Machine_external
  | _ -> None

let interrupt_bit = Int64.shift_left 1L 63

let to_xcause = function
  | Exception e -> Int64.of_int (exc_code e)
  | Interrupt i -> Int64.logor interrupt_bit (Int64.of_int (intr_code i))

let of_xcause v =
  if Int64.logand v interrupt_bit <> 0L then
    match intr_of_code (Int64.to_int (Int64.logand v 0xFFL)) with
    | Some i -> Some (Interrupt i)
    | None -> None
  else
    match exc_of_code (Int64.to_int (Int64.logand v 0xFFL)) with
    | Some e -> Some (Exception e)
    | None -> None

let exc_to_string = function
  | Instr_misaligned -> "instruction address misaligned"
  | Instr_access_fault -> "instruction access fault"
  | Illegal_instr -> "illegal instruction"
  | Breakpoint -> "breakpoint"
  | Load_misaligned -> "load address misaligned"
  | Load_access_fault -> "load access fault"
  | Store_misaligned -> "store/AMO address misaligned"
  | Store_access_fault -> "store/AMO access fault"
  | Ecall_from_u -> "ecall from U-mode"
  | Ecall_from_s -> "ecall from S-mode"
  | Ecall_from_m -> "ecall from M-mode"
  | Instr_page_fault -> "instruction page fault"
  | Load_page_fault -> "load page fault"
  | Store_page_fault -> "store/AMO page fault"

let intr_to_string = function
  | Supervisor_software -> "supervisor software interrupt"
  | Machine_software -> "machine software interrupt"
  | Supervisor_timer -> "supervisor timer interrupt"
  | Machine_timer -> "machine timer interrupt"
  | Supervisor_external -> "supervisor external interrupt"
  | Machine_external -> "machine external interrupt"

let to_string = function
  | Exception e -> exc_to_string e
  | Interrupt i -> intr_to_string i

let pp fmt t = Format.pp_print_string fmt (to_string t)

exception Trap of exc * int64
