module Bits = Mir_util.Bits

type t = {
  name : string;
  base : int64;
  size : int64;
  load : int64 -> int -> int64;
  store : int64 -> int -> int64 -> unit;
}

let contains d addr len =
  Bits.ule d.base addr
  && Bits.ule (Int64.add addr (Int64.of_int len)) (Int64.add d.base d.size)

let overlaps d addr len =
  let last = Int64.add addr (Int64.of_int (len - 1)) in
  let dlast = Int64.add d.base (Int64.sub d.size 1L) in
  Bits.ule d.base last && Bits.ule addr dlast
