module Bits = Mir_util.Bits
open Instr

let shamt6 v = Int64.to_int (Int64.logand v 0x3FL)
let shamt5 v = Int64.to_int (Int64.logand v 0x1FL)

let mulh_signed a b =
  (* High 64 bits of the signed 128-bit product, via 32-bit limbs. *)
  let lo_mask = 0xFFFFFFFFL in
  let a_lo = Int64.logand a lo_mask and a_hi = Int64.shift_right a 32 in
  let b_lo = Int64.logand b lo_mask and b_hi = Int64.shift_right b 32 in
  let ll = Int64.mul a_lo b_lo in
  let lh = Int64.mul a_lo b_hi in
  let hl = Int64.mul a_hi b_lo in
  let hh = Int64.mul a_hi b_hi in
  let carry =
    Int64.shift_right_logical
      (Int64.add
         (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh lo_mask))
         (Int64.logand hl lo_mask))
      32
  in
  Int64.add
    (Int64.add hh (Int64.add (Int64.shift_right lh 32) (Int64.shift_right hl 32)))
    carry

let mulh_unsigned a b =
  let lo_mask = 0xFFFFFFFFL in
  let a_lo = Int64.logand a lo_mask
  and a_hi = Int64.shift_right_logical a 32 in
  let b_lo = Int64.logand b lo_mask
  and b_hi = Int64.shift_right_logical b 32 in
  let ll = Int64.mul a_lo b_lo in
  let lh = Int64.mul a_lo b_hi in
  let hl = Int64.mul a_hi b_lo in
  let hh = Int64.mul a_hi b_hi in
  let carry =
    Int64.shift_right_logical
      (Int64.add
         (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh lo_mask))
         (Int64.logand hl lo_mask))
      32
  in
  Int64.add
    (Int64.add hh
       (Int64.add (Int64.shift_right_logical lh 32)
          (Int64.shift_right_logical hl 32)))
    carry

let mulhsu a b =
  (* signed a * unsigned b, high half: adjust the unsigned product. *)
  let uh = mulh_unsigned a b in
  if a < 0L then Int64.sub uh b else uh

let sdiv a b =
  if b = 0L then -1L
  else if a = Int64.min_int && b = -1L then Int64.min_int
  else Int64.div a b

let srem a b =
  if b = 0L then a
  else if a = Int64.min_int && b = -1L then 0L
  else Int64.rem a b

let udiv a b = if b = 0L then -1L else Bits.udiv a b
let urem a b = if b = 0L then a else Bits.urem a b

let op o a b =
  match o with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Sll -> Int64.shift_left a (shamt6 b)
  | Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Sltu -> if Bits.ult a b then 1L else 0L
  | Xor -> Int64.logxor a b
  | Srl -> Int64.shift_right_logical a (shamt6 b)
  | Sra -> Int64.shift_right a (shamt6 b)
  | Or -> Int64.logor a b
  | And -> Int64.logand a b
  | Mul -> Int64.mul a b
  | Mulh -> mulh_signed a b
  | Mulhsu -> mulhsu a b
  | Mulhu -> mulh_unsigned a b
  | Div -> sdiv a b
  | Divu -> udiv a b
  | Rem -> srem a b
  | Remu -> urem a b

let op32 o a b =
  let a32 = Bits.sext32 a and b32 = Bits.sext32 b in
  let r =
    match o with
    | Addw -> Int64.add a32 b32
    | Subw -> Int64.sub a32 b32
    | Sllw -> Int64.shift_left a32 (shamt5 b)
    | Srlw -> Int64.shift_right_logical (Bits.zext a ~width:32) (shamt5 b)
    | Sraw -> Int64.shift_right a32 (shamt5 b)
    | Mulw -> Int64.mul a32 b32
    | Divw -> sdiv a32 b32
    | Divuw ->
        udiv (Bits.zext a ~width:32) (Bits.zext b ~width:32)
    | Remw -> srem a32 b32
    | Remuw -> urem (Bits.zext a ~width:32) (Bits.zext b ~width:32)
  in
  Bits.sext32 r

let op_imm o a imm =
  match o with
  | Addi -> Int64.add a imm
  | Slti -> if Int64.compare a imm < 0 then 1L else 0L
  | Sltiu -> if Bits.ult a imm then 1L else 0L
  | Xori -> Int64.logxor a imm
  | Ori -> Int64.logor a imm
  | Andi -> Int64.logand a imm
  | Slli -> Int64.shift_left a (shamt6 imm)
  | Srli -> Int64.shift_right_logical a (shamt6 imm)
  | Srai -> Int64.shift_right a (shamt6 imm)

let op_imm32 o a imm =
  let r =
    match o with
    | Addiw -> Int64.add (Bits.sext32 a) imm
    | Slliw -> Int64.shift_left (Bits.sext32 a) (shamt5 imm)
    | Srliw -> Int64.shift_right_logical (Bits.zext a ~width:32) (shamt5 imm)
    | Sraiw -> Int64.shift_right (Bits.sext32 a) (shamt5 imm)
  in
  Bits.sext32 r

let branch_taken o a b =
  match o with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Int64.compare a b < 0
  | Bge -> Int64.compare a b >= 0
  | Bltu -> Bits.ult a b
  | Bgeu -> not (Bits.ult a b)
