(** CSR address constants and address-space predicates.

    Addresses follow the RISC-V privileged specification. The address
    encodes accessibility: bits 9:8 give the lowest privilege allowed
    and bits 11:10 = 0b11 mark a read-only CSR. *)

(* Unprivileged counters *)
val cycle : int
val time : int
val instret : int
val hpmcounter : int -> int  (** [hpmcounter n] for n in 3..31 *)

(* Supervisor *)
val sstatus : int
val sie : int
val stvec : int
val scounteren : int
val senvcfg : int
val sscratch : int
val sepc : int
val scause : int
val stval : int
val sip : int

val stimecmp : int
(** Sstc extension *)

val satp : int

(* Hypervisor (used by the ACE policy) *)
val hstatus : int
val hedeleg : int
val hideleg : int
val hie : int
val hcounteren : int
val hgeie : int
val htval : int
val hip : int
val hvip : int
val htinst : int
val hgatp : int
val hgeip : int
val vsstatus : int
val vsie : int
val vstvec : int
val vsscratch : int
val vsepc : int
val vscause : int
val vstval : int
val vsip : int
val vsatp : int

(* Machine *)
val mvendorid : int
val marchid : int
val mimpid : int
val mhartid : int
val mconfigptr : int
val mstatus : int
val misa : int
val medeleg : int
val mideleg : int
val mie : int
val mtvec : int
val mcounteren : int
val menvcfg : int
val mcountinhibit : int
val mscratch : int
val mepc : int
val mcause : int
val mtval : int
val mip : int
val mtinst : int
val mtval2 : int
val mcycle : int
val minstret : int
val mhpmcounter : int -> int
(** n in 3..31 *)

val mhpmevent : int -> int
(** n in 3..31 *)

val pmpcfg : int -> int
(** [pmpcfg n] for even n in 0..14 (RV64 has even-numbered cfg regs,
    each packing 8 entry bytes). *)

val pmpaddr : int -> int
(** [pmpaddr n] for n in 0..63 *)

(* Platform-custom CSRs (modelled after the P550's documented
   speculation/error-reporting controls). *)
val custom0 : int
val custom1 : int
val custom2 : int
val custom3 : int

val min_priv : int -> Priv.t
(** Lowest privilege level allowed to access this address. *)

val is_read_only : int -> bool
(** True iff the address space marks the CSR read-only. *)

val is_pmpcfg : int -> bool
val is_pmpaddr : int -> bool

val name : int -> string
(** Human-readable name, or ["csr_0x..."] for unknown addresses. *)
