(** Interface implemented by memory-mapped devices.

    Loads and stores receive offsets relative to the device base and an
    access size in bytes; the bus guarantees the access lies within the
    device window. Devices are polled for interrupt lines by the
    machine between instructions. *)

type t = {
  name : string;
  base : int64;
  size : int64;
  load : int64 -> int -> int64;
  store : int64 -> int -> int64 -> unit;
}

val contains : t -> int64 -> int -> bool
(** [contains d addr len] is true iff the access falls entirely within
    the device window. *)

val overlaps : t -> int64 -> int -> bool
(** True iff the access touches any byte of the window. *)
