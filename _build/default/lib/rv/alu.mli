(** Pure integer operation semantics (RV64IM).

    Shared by the machine's interpreter; kept separate so the semantics
    are unit-testable in isolation (division corner cases, shift
    amounts, W-form sign extension). *)

val op : Instr.op -> int64 -> int64 -> int64
val op32 : Instr.op32 -> int64 -> int64 -> int64
val op_imm : Instr.op_imm -> int64 -> int64 -> int64
val op_imm32 : Instr.op_imm32 -> int64 -> int64 -> int64
val branch_taken : Instr.branch_op -> int64 -> int64 -> bool
