type t = U | S | M

let to_int = function U -> 0 | S -> 1 | M -> 3
let of_int = function 0 -> Some U | 1 -> Some S | 3 -> Some M | _ -> None
let compare a b = Int.compare (to_int a) (to_int b)
let to_string = function U -> "U" | S -> "S" | M -> "M"
let pp fmt t = Format.pp_print_string fmt (to_string t)
