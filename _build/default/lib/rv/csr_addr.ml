let cycle = 0xC00
let time = 0xC01
let instret = 0xC02

let hpmcounter n =
  assert (n >= 3 && n <= 31);
  0xC00 + n

let sstatus = 0x100
let sie = 0x104
let stvec = 0x105
let scounteren = 0x106
let senvcfg = 0x10A
let sscratch = 0x140
let sepc = 0x141
let scause = 0x142
let stval = 0x143
let sip = 0x144
let stimecmp = 0x14D
let satp = 0x180
let hstatus = 0x600
let hedeleg = 0x602
let hideleg = 0x603
let hie = 0x604
let hcounteren = 0x606
let hgeie = 0x607
let htval = 0x643
let hip = 0x644
let hvip = 0x645
let htinst = 0x64A
let hgatp = 0x680
let hgeip = 0xE12
let vsstatus = 0x200
let vsie = 0x204
let vstvec = 0x205
let vsscratch = 0x240
let vsepc = 0x241
let vscause = 0x242
let vstval = 0x243
let vsip = 0x244
let vsatp = 0x280
let mvendorid = 0xF11
let marchid = 0xF12
let mimpid = 0xF13
let mhartid = 0xF14
let mconfigptr = 0xF15
let mstatus = 0x300
let misa = 0x301
let medeleg = 0x302
let mideleg = 0x303
let mie = 0x304
let mtvec = 0x305
let mcounteren = 0x306
let menvcfg = 0x30A
let mcountinhibit = 0x320
let mscratch = 0x340
let mepc = 0x341
let mcause = 0x342
let mtval = 0x343
let mip = 0x344
let mtinst = 0x34A
let mtval2 = 0x34B
let mcycle = 0xB00
let minstret = 0xB02

let mhpmcounter n =
  assert (n >= 3 && n <= 31);
  0xB00 + n

let mhpmevent n =
  assert (n >= 3 && n <= 31);
  0x320 + n

let pmpcfg n =
  assert (n >= 0 && n <= 14 && n mod 2 = 0);
  0x3A0 + n

let pmpaddr n =
  assert (n >= 0 && n <= 63);
  0x3B0 + n

let custom0 = 0x7C0
let custom1 = 0x7C1
let custom2 = 0x7C2
let custom3 = 0x7C3

let min_priv addr =
  match (addr lsr 8) land 0x3 with
  | 0 -> Priv.U
  | 1 -> Priv.S
  | 2 | 3 -> Priv.M
  | _ -> assert false

let is_read_only addr = (addr lsr 10) land 0x3 = 0x3
let is_pmpcfg addr = addr >= 0x3A0 && addr <= 0x3AF
let is_pmpaddr addr = addr >= 0x3B0 && addr <= 0x3EF

let name addr =
  if is_pmpcfg addr then Printf.sprintf "pmpcfg%d" (addr - 0x3A0)
  else if is_pmpaddr addr then Printf.sprintf "pmpaddr%d" (addr - 0x3B0)
  else if addr > 0xB02 && addr <= 0xB1F then
    Printf.sprintf "mhpmcounter%d" (addr - 0xB00)
  else if addr > 0x320 && addr <= 0x33F then
    Printf.sprintf "mhpmevent%d" (addr - 0x320)
  else if addr > 0xC02 && addr <= 0xC1F then
    Printf.sprintf "hpmcounter%d" (addr - 0xC00)
  else
    match addr with
    | 0xC00 -> "cycle"
    | 0xC01 -> "time"
    | 0xC02 -> "instret"
    | 0x100 -> "sstatus"
    | 0x104 -> "sie"
    | 0x105 -> "stvec"
    | 0x106 -> "scounteren"
    | 0x10A -> "senvcfg"
    | 0x140 -> "sscratch"
    | 0x141 -> "sepc"
    | 0x142 -> "scause"
    | 0x143 -> "stval"
    | 0x144 -> "sip"
    | 0x14D -> "stimecmp"
    | 0x180 -> "satp"
    | 0x600 -> "hstatus"
    | 0x602 -> "hedeleg"
    | 0x603 -> "hideleg"
    | 0x604 -> "hie"
    | 0x606 -> "hcounteren"
    | 0x607 -> "hgeie"
    | 0x643 -> "htval"
    | 0x644 -> "hip"
    | 0x645 -> "hvip"
    | 0x64A -> "htinst"
    | 0x680 -> "hgatp"
    | 0xE12 -> "hgeip"
    | 0x200 -> "vsstatus"
    | 0x204 -> "vsie"
    | 0x205 -> "vstvec"
    | 0x240 -> "vsscratch"
    | 0x241 -> "vsepc"
    | 0x242 -> "vscause"
    | 0x243 -> "vstval"
    | 0x244 -> "vsip"
    | 0x280 -> "vsatp"
    | 0xF11 -> "mvendorid"
    | 0xF12 -> "marchid"
    | 0xF13 -> "mimpid"
    | 0xF14 -> "mhartid"
    | 0xF15 -> "mconfigptr"
    | 0x300 -> "mstatus"
    | 0x301 -> "misa"
    | 0x302 -> "medeleg"
    | 0x303 -> "mideleg"
    | 0x304 -> "mie"
    | 0x305 -> "mtvec"
    | 0x306 -> "mcounteren"
    | 0x30A -> "menvcfg"
    | 0x320 -> "mcountinhibit"
    | 0x340 -> "mscratch"
    | 0x341 -> "mepc"
    | 0x342 -> "mcause"
    | 0x343 -> "mtval"
    | 0x344 -> "mip"
    | 0x34A -> "mtinst"
    | 0x34B -> "mtval2"
    | 0xB00 -> "mcycle"
    | 0xB02 -> "minstret"
    | 0x7C0 -> "custom0"
    | 0x7C1 -> "custom1"
    | 0x7C2 -> "custom2"
    | 0x7C3 -> "custom3"
    | _ -> Printf.sprintf "csr_0x%03x" addr
