(** Declarative CSR behaviour: the executable specification.

    The paper expresses the VFM specification as a function of the
    ISA specification (the official Sail model). In this reproduction
    the role of the Sail model is played by this module plus the
    reference interpreter: every WARL legalization rule is written
    once, here, and consumed both by the reference machine's CSR file
    and by Miralis's virtual CSRs. The verifier
    ({!Mir_verif.Faithful_emulation}) then checks that the *composed*
    behaviours (privilege checks, side effects, views) agree. *)

(** Which optional architectural features a hart implements. The VFM
    instantiates two of these: the host configuration and the virtual
    (reference) configuration — Definition 2's [c_h] and [c_r]. *)
type config = {
  pmp_count : int;  (** implemented PMP entries (0..64) *)
  has_sstc : bool;  (** stimecmp / menvcfg.STCE *)
  has_h : bool;  (** hypervisor extension CSRs *)
  has_time_csr : bool;  (** reading [time] works without trapping *)
  custom_csrs : int list;  (** platform-specific CSRs (e.g. P550) *)
  force_s_interrupt_delegation : bool;
      (** mideleg's S-level bits are hardwired to 1 — the reference
          configuration the VFM exposes to the firmware (§4.3) *)
  mvendorid : int64;
  marchid : int64;
  mimpid : int64;
}

val default_config : config
(** A fully featured configuration (8 PMP entries, no Sstc, no H). *)

(** Behaviour of one CSR. Writing stores
    [legalize ~old ~value:((old land lnot write_mask) lor (value land write_mask))];
    reading yields [(stored land read_mask) lor read_or]. *)
type t = {
  name : string;
  read_mask : int64;
  read_or : int64;
  write_mask : int64;
  legalize : old:int64 -> value:int64 -> int64;
  reset : int64;
}

val find : config -> int -> t option
(** [find config addr] is the spec of the CSR at [addr], or [None] if
    the configuration does not implement it. *)

val exists : config -> int -> bool
val all_addresses : config -> int list
(** Every implemented CSR address, used for exhaustive enumeration. *)

val apply_write : t -> old:int64 -> value:int64 -> int64
(** The stored value after a write, per the rule above. *)

val apply_read : t -> int64 -> int64
(** The value observed by a read of the stored value. *)

(** [mstatus] bit positions, shared by machine and VFM. *)
module Mstatus : sig
  val sie : int
  val mie : int
  val spie : int
  val mpie : int
  val spp : int
  val mpp_lo : int
  val mpp_hi : int
  val mprv : int
  val sum : int
  val mxr : int
  val tvm : int
  val tw : int
  val tsr : int

  val get_mpp : int64 -> Priv.t
  val set_mpp : int64 -> Priv.t -> int64
  val get_spp : int64 -> Priv.t
  val set_spp : int64 -> Priv.t -> int64

  val sstatus_mask : int64
  (** The bits of [mstatus] visible through [sstatus]. *)

  val write_mask : int64
  (** All software-writable mstatus bits. *)
end

(** Interrupt bit masks for mip/mie/mideleg. *)
module Irq : sig
  val ssip : int64
  val msip : int64
  val stip : int64
  val mtip : int64
  val seip : int64
  val meip : int64
  val s_mask : int64
  (** SSIP | STIP | SEIP *)

  val m_mask : int64
  (** MSIP | MTIP | MEIP *)
end

val misa_value : config -> int64
val medeleg_mask : int64
val mideleg_mask : int64
