(** Instruction decoder (32-bit encodings, little-endian words).

    Words are OCaml [int]s holding the low 32 bits. The decoder is
    total: unknown encodings map to [None], which the executor turns
    into an illegal-instruction trap with the raw bits as [mtval] —
    exactly what the VFM relies on to intercept privileged
    instructions executed by the deprivileged firmware. *)

val decode : int -> Instr.t option
(** [decode word] is the decoded instruction or [None] for an
    encoding outside the implemented subset. *)

val opcode : int -> int
(** The major opcode (bits 6:0). *)
