(** The physical memory bus: RAM plus MMIO devices.

    Accesses outside RAM and every device window fail, producing
    access faults at the executor level — this is also how the VFM's
    virtual MMIO devices appear to the firmware once the PMP blocks the
    real window. *)

type t

val create : ram:Memory.t -> t
val ram : t -> Memory.t
val add_device : t -> Device.t -> unit
val devices : t -> Device.t list

val find_device : t -> int64 -> Device.t option
(** The device whose window contains the address, if any. *)

val load : t -> int64 -> int -> int64 option
(** [load t addr size] with [size] ∈ {1,2,4,8}; [None] is a bus error
    (access fault). The access must not straddle RAM/device
    boundaries. *)

val store : t -> int64 -> int -> int64 -> bool
(** [store t addr size v]; [false] is a bus error. *)
