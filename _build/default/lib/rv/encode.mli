(** Instruction encoder — the inverse of {!Decode.decode}.

    Used by the assembler to materialize firmware and kernel programs
    as real instruction streams in simulated memory. The round-trip
    [Decode.decode (encode i) = Some i] is a verified property (see the
    decoder tests). *)

val encode : Instr.t -> int
(** [encode i] is the 32-bit encoding (as a non-negative [int]).
    Raises [Invalid_argument] if an immediate does not fit its
    field. *)
