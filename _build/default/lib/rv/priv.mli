(** RISC-V privilege levels.

    The simulator models the three classic levels; the hypervisor
    extension used by the ACE policy is handled as additional CSR state
    rather than as extra levels, mirroring the paper's observation that
    HS/VS-mode support reduces to more CSRs to shadow. *)

type t = U | S | M

val to_int : t -> int
(** Architectural encoding: U=0, S=1, M=3. *)

val of_int : int -> t option
(** Inverse of {!to_int}; [None] for the reserved encoding 2. *)

val compare : t -> t -> int
(** Orders by privilege: U < S < M. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
