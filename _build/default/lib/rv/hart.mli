(** Architectural state of one hart (hardware thread).

    The general-purpose registers, program counter, privilege level and
    CSR file. Cycle and retired-instruction counters are kept here so
    the cost model (and the VFM, which charges emulation cycles) can
    account time per hart. *)

type t = {
  id : int;
  mutable pc : int64;
  regs : int64 array;  (** 32 entries; x0 is forced to zero on read *)
  csr : Csr_file.t;
  mutable priv : Priv.t;
  mutable wfi : bool;  (** stalled in [wfi] *)
  mutable halted : bool;  (** stopped (HSM or test-finish) *)
  mutable cycles : int64;
  mutable instret : int64;
  mutable irq_stale : int;  (** steps since the interrupt lines were
                                refreshed (machine-internal) *)
  mutable reservation : int64 option;
      (** LR/SC reservation (physical address), cleared by stores and
          traps *)
}

val create : Csr_spec.config -> id:int -> t
val get : t -> int -> int64
(** Read a register; x0 reads zero. *)

val set : t -> int -> int64 -> unit
(** Write a register; writes to x0 are discarded. *)

val reset : t -> pc:int64 -> unit
(** Reset to M-mode at the given PC (registers cleared). *)
