open Instr

let check_range name v ~width =
  (* Signed range check for a [width]-bit immediate. *)
  let lo = Int64.neg (Int64.shift_left 1L (width - 1)) in
  let hi = Int64.sub (Int64.shift_left 1L (width - 1)) 1L in
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Encode: %s immediate %Ld out of range" name v)

let low n v = Int64.to_int (Int64.logand v (Mir_util.Bits.mask n))

let r_type ~opcode ~funct3 ~funct7 ~rd ~rs1 ~rs2 =
  opcode lor (rd lsl 7) lor (funct3 lsl 12) lor (rs1 lsl 15) lor (rs2 lsl 20)
  lor (funct7 lsl 25)

let i_type ~opcode ~funct3 ~rd ~rs1 ~imm =
  check_range "I" imm ~width:12;
  opcode lor (rd lsl 7) lor (funct3 lsl 12) lor (rs1 lsl 15)
  lor (low 12 imm lsl 20)

let s_type ~opcode ~funct3 ~rs1 ~rs2 ~imm =
  check_range "S" imm ~width:12;
  let i = low 12 imm in
  opcode lor ((i land 0x1F) lsl 7) lor (funct3 lsl 12) lor (rs1 lsl 15)
  lor (rs2 lsl 20) lor ((i lsr 5) lsl 25)

let b_type ~opcode ~funct3 ~rs1 ~rs2 ~imm =
  check_range "B" imm ~width:13;
  if Int64.logand imm 1L <> 0L then invalid_arg "Encode: odd branch offset";
  let i = low 13 imm in
  opcode
  lor (((i lsr 11) land 1) lsl 7)
  lor (((i lsr 1) land 0xF) lsl 8)
  lor (funct3 lsl 12) lor (rs1 lsl 15) lor (rs2 lsl 20)
  lor (((i lsr 5) land 0x3F) lsl 25)
  lor (((i lsr 12) land 1) lsl 31)

let u_type ~opcode ~rd ~imm =
  check_range "U" imm ~width:32;
  if Int64.logand imm 0xFFFL <> 0L then
    invalid_arg "Encode: U-type immediate has low bits set";
  let i = low 32 imm in
  opcode lor (rd lsl 7) lor ((i lsr 12) lsl 12)

let j_type ~opcode ~rd ~imm =
  check_range "J" imm ~width:21;
  if Int64.logand imm 1L <> 0L then invalid_arg "Encode: odd jump offset";
  let i = low 21 imm in
  opcode lor (rd lsl 7)
  lor (((i lsr 12) land 0xFF) lsl 12)
  lor (((i lsr 11) land 1) lsl 20)
  lor (((i lsr 1) land 0x3FF) lsl 21)
  lor (((i lsr 20) land 1) lsl 31)

let load_funct3 width unsigned =
  match (width, unsigned) with
  | B, false -> 0 | H, false -> 1 | W, false -> 2 | D, _ -> 3
  | B, true -> 4 | H, true -> 5 | W, true -> 6

let store_funct3 = function B -> 0 | H -> 1 | W -> 2 | D -> 3

let branch_funct3 = function
  | Beq -> 0 | Bne -> 1 | Blt -> 4 | Bge -> 5 | Bltu -> 6 | Bgeu -> 7

let op_functs = function
  | Add -> (0x00, 0) | Sub -> (0x20, 0) | Sll -> (0x00, 1) | Slt -> (0x00, 2)
  | Sltu -> (0x00, 3) | Xor -> (0x00, 4) | Srl -> (0x00, 5) | Sra -> (0x20, 5)
  | Or -> (0x00, 6) | And -> (0x00, 7)
  | Mul -> (0x01, 0) | Mulh -> (0x01, 1) | Mulhsu -> (0x01, 2)
  | Mulhu -> (0x01, 3) | Div -> (0x01, 4) | Divu -> (0x01, 5)
  | Rem -> (0x01, 6) | Remu -> (0x01, 7)

let op32_functs = function
  | Addw -> (0x00, 0) | Subw -> (0x20, 0) | Sllw -> (0x00, 1)
  | Srlw -> (0x00, 5) | Sraw -> (0x20, 5)
  | Mulw -> (0x01, 0) | Divw -> (0x01, 4) | Divuw -> (0x01, 5)
  | Remw -> (0x01, 6) | Remuw -> (0x01, 7)

let shamt_imm name v limit =
  if v < 0L || v >= Int64.of_int limit then
    invalid_arg (Printf.sprintf "Encode: %s shift amount %Ld out of range" name v);
  v

let encode = function
  | Lui (rd, imm) -> u_type ~opcode:0x37 ~rd ~imm
  | Auipc (rd, imm) -> u_type ~opcode:0x17 ~rd ~imm
  | Jal (rd, imm) -> j_type ~opcode:0x6F ~rd ~imm
  | Jalr (rd, rs1, imm) -> i_type ~opcode:0x67 ~funct3:0 ~rd ~rs1 ~imm
  | Branch (op, rs1, rs2, imm) ->
      b_type ~opcode:0x63 ~funct3:(branch_funct3 op) ~rs1 ~rs2 ~imm
  | Load { width; unsigned; rd; rs1; imm } ->
      i_type ~opcode:0x03 ~funct3:(load_funct3 width unsigned) ~rd ~rs1 ~imm
  | Store { width; rs2; rs1; imm } ->
      s_type ~opcode:0x23 ~funct3:(store_funct3 width) ~rs1 ~rs2 ~imm
  | Op_imm (op, rd, rs1, imm) -> begin
      let i ~funct3 imm = i_type ~opcode:0x13 ~funct3 ~rd ~rs1 ~imm in
      match op with
      | Addi -> i ~funct3:0 imm
      | Slti -> i ~funct3:2 imm
      | Sltiu -> i ~funct3:3 imm
      | Xori -> i ~funct3:4 imm
      | Ori -> i ~funct3:6 imm
      | Andi -> i ~funct3:7 imm
      | Slli -> i ~funct3:1 (shamt_imm "slli" imm 64)
      | Srli -> i ~funct3:5 (shamt_imm "srli" imm 64)
      | Srai ->
          i ~funct3:5 (Int64.logor (shamt_imm "srai" imm 64) 0x400L)
    end
  | Op_imm32 (op, rd, rs1, imm) -> begin
      let i ~funct3 imm = i_type ~opcode:0x1B ~funct3 ~rd ~rs1 ~imm in
      match op with
      | Addiw -> i ~funct3:0 imm
      | Slliw -> i ~funct3:1 (shamt_imm "slliw" imm 32)
      | Srliw -> i ~funct3:5 (shamt_imm "srliw" imm 32)
      | Sraiw ->
          i ~funct3:5 (Int64.logor (shamt_imm "sraiw" imm 32) 0x400L)
    end
  | Op (op, rd, rs1, rs2) ->
      let funct7, funct3 = op_functs op in
      r_type ~opcode:0x33 ~funct3 ~funct7 ~rd ~rs1 ~rs2
  | Op32 (op, rd, rs1, rs2) ->
      let funct7, funct3 = op32_functs op in
      r_type ~opcode:0x3B ~funct3 ~funct7 ~rd ~rs1 ~rs2
  | Fence -> 0x0F lor (0 lsl 12) lor 0x0FF00000
  | Fence_i -> 0x0F lor (1 lsl 12)
  | Ecall -> 0x73
  | Ebreak -> 0x73 lor (1 lsl 20)
  | Csr { op; rd; src; csr } ->
      if csr < 0 || csr > 0xFFF then invalid_arg "Encode: CSR address";
      let funct3, rs1 =
        match (op, src) with
        | Csrrw, Reg r -> (1, r)
        | Csrrs, Reg r -> (2, r)
        | Csrrc, Reg r -> (3, r)
        | Csrrw, Imm z -> (5, z)
        | Csrrs, Imm z -> (6, z)
        | Csrrc, Imm z -> (7, z)
      in
      if rs1 < 0 || rs1 > 31 then invalid_arg "Encode: CSR zimm/rs1";
      0x73 lor (rd lsl 7) lor (funct3 lsl 12) lor (rs1 lsl 15) lor (csr lsl 20)
  | Mret -> 0x73 lor (0x302 lsl 20)
  | Sret -> 0x73 lor (0x102 lsl 20)
  | Wfi -> 0x73 lor (0x105 lsl 20)
  | Sfence_vma (rs1, rs2) ->
      r_type ~opcode:0x73 ~funct3:0 ~funct7:0x09 ~rd:0 ~rs1 ~rs2
  | Amo { op; wide; aq; rl; rd; rs1; rs2 } ->
      let funct5 =
        match op with
        | Lr -> 0x02 | Sc -> 0x03 | Swap -> 0x01 | Amoadd -> 0x00
        | Amoxor -> 0x04 | Amoand -> 0x0C | Amoor -> 0x08
        | Amomin -> 0x10 | Amomax -> 0x14 | Amominu -> 0x18
        | Amomaxu -> 0x1C
      in
      let funct7 =
        (funct5 lsl 2) lor (if aq then 2 else 0) lor if rl then 1 else 0
      in
      r_type ~opcode:0x2F ~funct3:(if wide then 3 else 2) ~funct7 ~rd ~rs1
        ~rs2
