(** Flat physical RAM (little-endian).

    The evaluation platforms carry 4–16 GB; the simulator allocates a
    configurable window (default 32 MiB) at the standard RISC-V DRAM
    base, which is ample for the firmware, kernels and workload
    buffers while keeping allocation cheap. *)

type t

val create : base:int64 -> size:int -> t
val base : t -> int64
val size : t -> int
val in_range : t -> int64 -> int -> bool
(** [in_range t addr len] is true iff [addr, addr+len) is backed. *)

val load : t -> int64 -> int -> int64
(** [load t addr size] reads [size] ∈ {1,2,4,8} bytes, zero-extended.
    The caller guarantees range and alignment. *)

val store : t -> int64 -> int -> int64 -> unit
(** [store t addr size v] writes the low [size] bytes of [v]. *)

val load_bytes : t -> int64 -> int -> bytes
val store_bytes : t -> int64 -> bytes -> unit
val fill : t -> int64 -> int -> char -> unit
