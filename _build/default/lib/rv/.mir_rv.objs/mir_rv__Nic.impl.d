lib/rv/nic.ml: Bytes Device Int64 Memory Queue
