lib/rv/vmem.ml: Cause Int64 Mir_util Priv
