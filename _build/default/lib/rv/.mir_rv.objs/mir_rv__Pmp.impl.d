lib/rv/pmp.ml: Array Int64 Mir_util Priv
