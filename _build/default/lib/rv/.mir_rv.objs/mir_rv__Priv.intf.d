lib/rv/priv.mli: Format
