lib/rv/csr_spec.ml: Char Csr_addr Int64 List Mir_util Option Priv
