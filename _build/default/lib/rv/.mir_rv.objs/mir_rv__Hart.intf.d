lib/rv/hart.mli: Csr_file Csr_spec Priv
