lib/rv/uart.mli: Device
