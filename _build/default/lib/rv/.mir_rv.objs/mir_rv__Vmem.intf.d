lib/rv/vmem.mli: Cause Priv
