lib/rv/cause.ml: Format Int64
