lib/rv/bus.mli: Device Memory
