lib/rv/plic.mli: Device
