lib/rv/memory.mli:
