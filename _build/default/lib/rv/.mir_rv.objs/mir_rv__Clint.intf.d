lib/rv/clint.mli: Device
