lib/rv/blockdev.mli: Device Memory
