lib/rv/instr.ml: Array Format Int64 Printf
