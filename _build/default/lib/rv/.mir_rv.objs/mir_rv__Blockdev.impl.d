lib/rv/blockdev.ml: Bytes Device Int64 Memory Mir_util
