lib/rv/machine.mli: Blockdev Bus Cause Clint Csr_spec Hart Instr Nic Plic Pmp Priv Uart Vmem
