lib/rv/plic.ml: Array Device Int64
