lib/rv/uart.ml: Buffer Char Device Int64
