lib/rv/memory.ml: Bytes Char Int64
