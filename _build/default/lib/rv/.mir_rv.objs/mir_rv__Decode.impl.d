lib/rv/decode.ml: Instr Int64 Mir_util
