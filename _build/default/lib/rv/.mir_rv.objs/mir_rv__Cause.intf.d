lib/rv/cause.mli: Format
