lib/rv/csr_file.ml: Array Csr_addr Csr_spec Int64 Mir_util Option Pmp
