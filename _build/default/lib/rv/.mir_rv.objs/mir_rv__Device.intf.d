lib/rv/device.mli:
