lib/rv/csr_addr.mli: Priv
