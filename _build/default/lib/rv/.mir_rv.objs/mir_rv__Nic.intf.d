lib/rv/nic.mli: Device Memory
