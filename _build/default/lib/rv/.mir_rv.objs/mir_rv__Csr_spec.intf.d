lib/rv/csr_spec.mli: Priv
