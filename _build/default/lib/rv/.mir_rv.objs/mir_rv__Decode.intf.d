lib/rv/decode.mli: Instr
