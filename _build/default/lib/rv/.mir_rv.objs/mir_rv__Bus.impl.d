lib/rv/bus.ml: Device Int64 List Memory
