lib/rv/csr_file.mli: Csr_spec Pmp
