lib/rv/priv.ml: Format Int
