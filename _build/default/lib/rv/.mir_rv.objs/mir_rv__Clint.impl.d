lib/rv/clint.ml: Array Device Int64 Mir_util
