lib/rv/hart.ml: Array Csr_file Priv
