lib/rv/instr.mli: Format
