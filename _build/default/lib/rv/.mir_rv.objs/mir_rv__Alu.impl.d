lib/rv/alu.ml: Instr Int64 Mir_util
