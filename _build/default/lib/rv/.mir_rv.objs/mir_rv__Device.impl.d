lib/rv/device.ml: Int64 Mir_util
