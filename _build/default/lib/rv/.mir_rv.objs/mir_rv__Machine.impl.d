lib/rv/machine.ml: Alu Array Blockdev Bus Cause Clint Csr_addr Csr_file Csr_spec Decode Device Hart Instr Int64 List Memory Mir_util Nic Plic Pmp Priv Uart Vmem
