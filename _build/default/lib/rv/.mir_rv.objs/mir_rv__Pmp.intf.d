lib/rv/pmp.mli: Priv
