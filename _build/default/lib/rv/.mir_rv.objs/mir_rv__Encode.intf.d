lib/rv/encode.mli: Instr
