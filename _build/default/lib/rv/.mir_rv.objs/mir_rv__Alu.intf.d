lib/rv/alu.mli: Instr
