lib/rv/encode.ml: Instr Int64 Mir_util Printf
