lib/rv/csr_addr.ml: Printf Priv
