(** Trap causes: synchronous exception codes and interrupt codes.

    Encodings follow the RISC-V privileged specification v1.12. The
    value stored in [mcause]/[scause] is the code with bit 63 set for
    interrupts. *)

(** Synchronous exceptions. *)
type exc =
  | Instr_misaligned
  | Instr_access_fault
  | Illegal_instr
  | Breakpoint
  | Load_misaligned
  | Load_access_fault
  | Store_misaligned
  | Store_access_fault
  | Ecall_from_u
  | Ecall_from_s
  | Ecall_from_m
  | Instr_page_fault
  | Load_page_fault
  | Store_page_fault

(** Interrupts (the standard local interrupts). *)
type intr =
  | Supervisor_software
  | Machine_software
  | Supervisor_timer
  | Machine_timer
  | Supervisor_external
  | Machine_external

type t = Exception of exc | Interrupt of intr

val exc_code : exc -> int
val intr_code : intr -> int

val exc_of_code : int -> exc option
val intr_of_code : int -> intr option

val to_xcause : t -> int64
(** The value written to [mcause]/[scause]. *)

val of_xcause : int64 -> t option
(** Inverse of {!to_xcause} for standard codes. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Trap of exc * int64
(** [Trap (exc, tval)] is raised by the executor when an instruction
    faults; the machine converts it into an architectural trap. [tval]
    is the value for [mtval]/[stval]. *)
