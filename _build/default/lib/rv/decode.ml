open Instr

let opcode w = w land 0x7F
let rd w = (w lsr 7) land 0x1F
let rs1 w = (w lsr 15) land 0x1F
let rs2 w = (w lsr 20) land 0x1F
let funct3 w = (w lsr 12) land 0x7
let funct7 w = (w lsr 25) land 0x7F

let sext_int v width = Mir_util.Bits.sext (Int64.of_int v) ~width

(* Immediate extraction per encoding format; results are
   sign-extended int64 byte values. *)
let imm_i w = sext_int (w lsr 20) 12
let imm_s w = sext_int (((w lsr 25) lsl 5) lor ((w lsr 7) land 0x1F)) 12

let imm_b w =
  let v =
    (((w lsr 31) land 1) lsl 12)
    lor (((w lsr 7) land 1) lsl 11)
    lor (((w lsr 25) land 0x3F) lsl 5)
    lor (((w lsr 8) land 0xF) lsl 1)
  in
  sext_int v 13

let imm_u w = sext_int ((w lsr 12) lsl 12) 32

let imm_j w =
  let v =
    (((w lsr 31) land 1) lsl 20)
    lor (((w lsr 12) land 0xFF) lsl 12)
    lor (((w lsr 20) land 1) lsl 11)
    lor (((w lsr 21) land 0x3FF) lsl 1)
  in
  sext_int v 21

let decode_load w =
  let mk width unsigned =
    Some (Load { width; unsigned; rd = rd w; rs1 = rs1 w; imm = imm_i w })
  in
  match funct3 w with
  | 0 -> mk B false
  | 1 -> mk H false
  | 2 -> mk W false
  | 3 -> mk D false
  | 4 -> mk B true
  | 5 -> mk H true
  | 6 -> mk W true
  | _ -> None

let decode_store w =
  let mk width = Some (Store { width; rs2 = rs2 w; rs1 = rs1 w; imm = imm_s w }) in
  match funct3 w with
  | 0 -> mk B
  | 1 -> mk H
  | 2 -> mk W
  | 3 -> mk D
  | _ -> None

let decode_branch w =
  let mk op = Some (Branch (op, rs1 w, rs2 w, imm_b w)) in
  match funct3 w with
  | 0 -> mk Beq
  | 1 -> mk Bne
  | 4 -> mk Blt
  | 5 -> mk Bge
  | 6 -> mk Bltu
  | 7 -> mk Bgeu
  | _ -> None

let decode_op_imm w =
  let mk op imm = Some (Op_imm (op, rd w, rs1 w, imm)) in
  let shamt = Int64.of_int ((w lsr 20) land 0x3F) in
  let shift_funct6 = w lsr 26 in
  match funct3 w with
  | 0 -> mk Addi (imm_i w)
  | 1 -> if shift_funct6 = 0 then mk Slli shamt else None
  | 2 -> mk Slti (imm_i w)
  | 3 -> mk Sltiu (imm_i w)
  | 4 -> mk Xori (imm_i w)
  | 5 ->
      if shift_funct6 = 0 then mk Srli shamt
      else if shift_funct6 = 0x10 then mk Srai shamt
      else None
  | 6 -> mk Ori (imm_i w)
  | 7 -> mk Andi (imm_i w)
  | _ -> None

let decode_op_imm32 w =
  let mk op imm = Some (Op_imm32 (op, rd w, rs1 w, imm)) in
  let shamt = Int64.of_int ((w lsr 20) land 0x1F) in
  match funct3 w with
  | 0 -> mk Addiw (imm_i w)
  | 1 -> if funct7 w = 0 then mk Slliw shamt else None
  | 5 ->
      if funct7 w = 0 then mk Srliw shamt
      else if funct7 w = 0x20 then mk Sraiw shamt
      else None
  | _ -> None

let decode_op w =
  let mk op = Some (Op (op, rd w, rs1 w, rs2 w)) in
  match (funct7 w, funct3 w) with
  | 0x00, 0 -> mk Add
  | 0x20, 0 -> mk Sub
  | 0x00, 1 -> mk Sll
  | 0x00, 2 -> mk Slt
  | 0x00, 3 -> mk Sltu
  | 0x00, 4 -> mk Xor
  | 0x00, 5 -> mk Srl
  | 0x20, 5 -> mk Sra
  | 0x00, 6 -> mk Or
  | 0x00, 7 -> mk And
  | 0x01, 0 -> mk Mul
  | 0x01, 1 -> mk Mulh
  | 0x01, 2 -> mk Mulhsu
  | 0x01, 3 -> mk Mulhu
  | 0x01, 4 -> mk Div
  | 0x01, 5 -> mk Divu
  | 0x01, 6 -> mk Rem
  | 0x01, 7 -> mk Remu
  | _ -> None

let decode_op32 w =
  let mk op = Some (Op32 (op, rd w, rs1 w, rs2 w)) in
  match (funct7 w, funct3 w) with
  | 0x00, 0 -> mk Addw
  | 0x20, 0 -> mk Subw
  | 0x00, 1 -> mk Sllw
  | 0x00, 5 -> mk Srlw
  | 0x20, 5 -> mk Sraw
  | 0x01, 0 -> mk Mulw
  | 0x01, 4 -> mk Divw
  | 0x01, 5 -> mk Divuw
  | 0x01, 6 -> mk Remw
  | 0x01, 7 -> mk Remuw
  | _ -> None

let decode_system w =
  let csr = (w lsr 20) land 0xFFF in
  let zimm = rs1 w in
  let mk op src = Some (Csr { op; rd = rd w; src; csr }) in
  match funct3 w with
  | 0 -> begin
      (* Non-CSR SYSTEM: dispatch on the full imm12/funct7 space. *)
      if rd w <> 0 then None
      else
        match ((w lsr 20) land 0xFFF, rs1 w, funct7 w) with
        | 0x000, 0, _ -> Some Ecall
        | 0x001, 0, _ -> Some Ebreak
        | 0x102, 0, _ -> Some Sret
        | 0x302, 0, _ -> Some Mret
        | 0x105, 0, _ -> Some Wfi
        | _, _, 0x09 -> Some (Sfence_vma (rs1 w, rs2 w))
        | _ -> None
    end
  | 1 -> mk Csrrw (Reg (rs1 w))
  | 2 -> mk Csrrs (Reg (rs1 w))
  | 3 -> mk Csrrc (Reg (rs1 w))
  | 5 -> mk Csrrw (Imm zimm)
  | 6 -> mk Csrrs (Imm zimm)
  | 7 -> mk Csrrc (Imm zimm)
  | _ -> None

let decode_amo w =
  let funct5 = w lsr 27 in
  let aq = (w lsr 26) land 1 = 1 and rl = (w lsr 25) land 1 = 1 in
  let wide =
    match funct3 w with 2 -> Some false | 3 -> Some true | _ -> None
  in
  let op =
    match funct5 with
    | 0x02 -> Some Lr
    | 0x03 -> Some Sc
    | 0x01 -> Some Swap
    | 0x00 -> Some Amoadd
    | 0x04 -> Some Amoxor
    | 0x0C -> Some Amoand
    | 0x08 -> Some Amoor
    | 0x10 -> Some Amomin
    | 0x14 -> Some Amomax
    | 0x18 -> Some Amominu
    | 0x1C -> Some Amomaxu
    | _ -> None
  in
  match (op, wide) with
  | Some op, Some wide ->
      if op = Lr && rs2 w <> 0 then None
      else Some (Amo { op; wide; aq; rl; rd = rd w; rs1 = rs1 w; rs2 = rs2 w })
  | _ -> None

let decode_misc_mem w =
  match funct3 w with
  | 0 -> Some Fence
  | 1 -> Some Fence_i
  | _ -> None

let decode w =
  let w = w land 0xFFFFFFFF in
  match opcode w with
  | 0x37 -> Some (Lui (rd w, imm_u w))
  | 0x17 -> Some (Auipc (rd w, imm_u w))
  | 0x6F -> Some (Jal (rd w, imm_j w))
  | 0x67 -> if funct3 w = 0 then Some (Jalr (rd w, rs1 w, imm_i w)) else None
  | 0x63 -> decode_branch w
  | 0x03 -> decode_load w
  | 0x23 -> decode_store w
  | 0x13 -> decode_op_imm w
  | 0x1B -> decode_op_imm32 w
  | 0x33 -> decode_op w
  | 0x3B -> decode_op32 w
  | 0x0F -> decode_misc_mem w
  | 0x2F -> decode_amo w
  | 0x73 -> decode_system w
  | _ -> None
