type t = {
  id : int;
  mutable pc : int64;
  regs : int64 array;
  csr : Csr_file.t;
  mutable priv : Priv.t;
  mutable wfi : bool;
  mutable halted : bool;
  mutable cycles : int64;
  mutable instret : int64;
  mutable irq_stale : int;
  mutable reservation : int64 option;
}

let create config ~id =
  {
    id;
    pc = 0L;
    regs = Array.make 32 0L;
    csr = Csr_file.create config ~hart_id:id;
    priv = Priv.M;
    wfi = false;
    halted = false;
    cycles = 0L;
    instret = 0L;
    irq_stale = 0;
    reservation = None;
  }

let get t r = if r = 0 then 0L else t.regs.(r)
let set t r v = if r <> 0 then t.regs.(r) <- v

let reset t ~pc =
  t.pc <- pc;
  t.reservation <- None;
  Array.fill t.regs 0 32 0L;
  t.priv <- Priv.M;
  t.wfi <- false;
  t.halted <- false
