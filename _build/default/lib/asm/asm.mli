(** A two-pass assembler for authoring guest programs.

    Firmware images and S-mode kernels in this reproduction are real
    RV64 instruction streams produced by this module and executed by
    the simulated harts — which is what lets the same unmodified image
    run either natively in M-mode or deprivileged under the VFM.

    Programs are lists of {!item}s. Labels give symbolic targets for
    branches, jumps and address materialization. *)

type item =
  | Ins of Mir_rv.Instr.t  (** one concrete instruction *)
  | Label of string
  | Word32 of int64
  | Word64 of int64
  | Word_label of string  (** 8-byte absolute address of a label *)
  | Ascii of string
  | Align of int  (** pad to a multiple of [n] bytes *)
  | Space of int  (** reserve zeroed bytes *)
  | La of int * string  (** load a label's address (auipc+addi, 8 B) *)
  | Jump of string  (** j label *)
  | Jal_to of int * string  (** jal rd, label *)
  | Branch_to of Mir_rv.Instr.branch_op * int * int * string
  | Call of string  (** jal ra, label *)
  | Li of int * int64
      (** load a 64-bit constant; occupies a fixed 8-instruction slot
          (padded with nops) so label layout stays one-pass *)

type program = item list

exception Unknown_label of string

val assemble : base:int64 -> program -> bytes * (string * int64) list
(** [assemble ~base items] lays the program out at [base] and returns
    the image and the label table. Raises {!Unknown_label} on dangling
    references and [Invalid_argument] on out-of-range offsets. *)

val label_addr : (string * int64) list -> string -> int64

(** Register aliases (ABI names). *)
module Reg : sig
  val zero : int
  val ra : int
  val sp : int
  val gp : int
  val tp : int
  val t0 : int
  val t1 : int
  val t2 : int
  val s0 : int
  val s1 : int
  val a0 : int
  val a1 : int
  val a2 : int
  val a3 : int
  val a4 : int
  val a5 : int
  val a6 : int
  val a7 : int
  val s2 : int
  val s3 : int
  val s4 : int
  val s5 : int
  val s6 : int
  val s7 : int
  val s8 : int
  val s9 : int
  val s10 : int
  val s11 : int
  val t3 : int
  val t4 : int
  val t5 : int
  val t6 : int
end

(** Instruction-building helpers (thin sugar over {!Mir_rv.Instr}). *)
module I : sig
  val nop : item
  val mv : int -> int -> item
  val li : int -> int64 -> item
  val la : int -> string -> item
  val add : int -> int -> int -> item
  val addi : int -> int -> int64 -> item
  val sub : int -> int -> int -> item
  val and_ : int -> int -> int -> item
  val andi : int -> int -> int64 -> item
  val or_ : int -> int -> int -> item
  val ori : int -> int -> int64 -> item
  val xor : int -> int -> int -> item
  val xori : int -> int -> int64 -> item
  val slli : int -> int -> int -> item
  val srli : int -> int -> int -> item
  val srai : int -> int -> int -> item
  val sll : int -> int -> int -> item
  val srl : int -> int -> int -> item
  val sra : int -> int -> int -> item
  val mul : int -> int -> int -> item
  val div : int -> int -> int -> item
  val rem : int -> int -> int -> item
  val sltu : int -> int -> int -> item
  val slt : int -> int -> int -> item
  val seqz : int -> int -> item
  val snez : int -> int -> item
  val ld : int -> int64 -> int -> item
  (** rd, offset, base *)

  val lw : int -> int64 -> int -> item
  val lwu : int -> int64 -> int -> item
  val lh : int -> int64 -> int -> item
  val lhu : int -> int64 -> int -> item
  val lb : int -> int64 -> int -> item
  val lbu : int -> int64 -> int -> item
  val sd : int -> int64 -> int -> item
  (** rs2, offset, base *)

  val sw : int -> int64 -> int -> item
  val sh : int -> int64 -> int -> item
  val sb : int -> int64 -> int -> item
  val j : string -> item
  val jal : int -> string -> item
  val jr : int -> item
  val jalr : int -> int -> int64 -> item
  val call : string -> item
  val ret : item
  val beq : int -> int -> string -> item
  val bne : int -> int -> string -> item
  val blt : int -> int -> string -> item
  val bge : int -> int -> string -> item
  val bltu : int -> int -> string -> item
  val bgeu : int -> int -> string -> item
  val beqz : int -> string -> item
  val bnez : int -> string -> item
  val csrrw : int -> int -> int -> item
  (** rd, csr, rs1 *)

  val csrrs : int -> int -> int -> item
  val csrrc : int -> int -> int -> item
  val csrr : int -> int -> item
  (** rd, csr *)

  val csrw : int -> int -> item
  (** csr, rs1 *)

  val csrs : int -> int -> item
  val csrc : int -> int -> item
  val csrwi : int -> int -> item
  (** csr, zimm *)

  val csrsi : int -> int -> item
  val csrci : int -> int -> item
  val ecall : item
  val ebreak : item
  val mret : item
  val sret : item
  val wfi : item
  val fence : item
  val fence_i : item
  val sfence_vma : item

  val lr_d : int -> int -> item
  (** rd, rs1 *)

  val sc_d : int -> int -> int -> item
  (** rd, rs2, rs1 *)

  val amoadd_d : int -> int -> int -> item
  (** rd, rs2, rs1 *)

  val amoswap_w : int -> int -> int -> item
  (** rd, rs2, rs1 *)

  val label : string -> item
end
