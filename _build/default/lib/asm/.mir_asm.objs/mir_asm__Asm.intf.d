lib/asm/asm.mli: Mir_rv
