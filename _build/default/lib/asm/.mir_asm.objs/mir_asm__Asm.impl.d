lib/asm/asm.ml: Bytes Hashtbl Int32 Int64 List Mir_rv Mir_util Printf String
