module Instr = Mir_rv.Instr
module Encode = Mir_rv.Encode
module Bits = Mir_util.Bits

type item =
  | Ins of Instr.t
  | Label of string
  | Word32 of int64
  | Word64 of int64
  | Word_label of string
  | Ascii of string
  | Align of int
  | Space of int
  | La of int * string
  | Jump of string
  | Jal_to of int * string
  | Branch_to of Instr.branch_op * int * int * string
  | Call of string
  | Li of int * int64

type program = item list

exception Unknown_label of string

(* Expand a 64-bit constant load into at most 5 real instructions.
   The item occupies a fixed 5-slot so that label offsets are
   computable in one sizing pass; unused slots become nops. *)
let li_sequence rd v =
  let nop = Instr.Op_imm (Instr.Addi, 0, 0, 0L) in
  let fits12 x = x >= -2048L && x <= 2047L in
  let fits32 x = x >= -2147483648L && x <= 2147483647L in
  (* Recursive expansion: materialize the upper bits, shift left 12 and
     add the low 12-bit chunk. 64-bit constants take <= 8 instructions
     (lui+addiw plus three shift/add pairs). *)
  let rec expand v =
    if fits12 v then [ Instr.Op_imm (Instr.Addi, rd, 0, v) ]
    else if fits32 v then begin
      let lo = Bits.sext (Int64.logand v 0xFFFL) ~width:12 in
      let hi32 = Bits.sext32 (Int64.sub v lo) in
      let lui = Instr.Lui (rd, hi32) in
      if lo = 0L then [ lui ]
      else [ lui; Instr.Op_imm32 (Instr.Addiw, rd, rd, lo) ]
    end
    else begin
      let lo = Bits.sext (Int64.logand v 0xFFFL) ~width:12 in
      let hi = Int64.shift_right (Int64.sub v lo) 12 in
      expand hi
      @ (Instr.Op_imm (Instr.Slli, rd, rd, 12L)
         ::
         (if lo = 0L then [] else [ Instr.Op_imm (Instr.Addi, rd, rd, lo) ]))
    end
  in
  let seq = expand v in
  let pad = 8 - List.length seq in
  assert (pad >= 0);
  seq @ List.init pad (fun _ -> nop)

let li_slot_bytes = 8 * 4

let item_size = function
  | Ins _ -> 4
  | Label _ -> 0
  | Word32 _ -> 4
  | Word64 _ -> 8
  | Word_label _ -> 8
  | Ascii s -> String.length s
  | Align _ -> -1 (* depends on position; handled in sizing pass *)
  | Space n -> n
  | La _ -> 8
  | Jump _ | Jal_to _ | Branch_to _ | Call _ -> 4
  | Li _ -> li_slot_bytes

let layout ~base items =
  let tbl = Hashtbl.create 64 in
  let pos = ref 0 in
  List.iter
    (fun item ->
      (match item with
      | Label l ->
          if Hashtbl.mem tbl l then
            invalid_arg (Printf.sprintf "Asm: duplicate label %s" l);
          Hashtbl.add tbl l (Int64.add base (Int64.of_int !pos))
      | _ -> ());
      match item with
      | Align n ->
          let rem = !pos mod n in
          if rem <> 0 then pos := !pos + (n - rem)
      | it -> pos := !pos + item_size it)
    items;
  (tbl, !pos)

let label_addr labels l =
  match List.assoc_opt l labels with
  | Some a -> a
  | None -> raise (Unknown_label l)

let assemble ~base items =
  let tbl, total = layout ~base items in
  let find l =
    match Hashtbl.find_opt tbl l with
    | Some a -> a
    | None -> raise (Unknown_label l)
  in
  let buf = Bytes.make total '\000' in
  let pos = ref 0 in
  let emit_ins i =
    Bytes.set_int32_le buf !pos (Int32.of_int (Encode.encode i));
    pos := !pos + 4
  in
  List.iter
    (fun item ->
      let pc () = Int64.add base (Int64.of_int !pos) in
      match item with
      | Ins i -> emit_ins i
      | Label _ -> ()
      | Word32 v ->
          Bytes.set_int32_le buf !pos (Int64.to_int32 v);
          pos := !pos + 4
      | Word64 v ->
          Bytes.set_int64_le buf !pos v;
          pos := !pos + 8
      | Word_label l ->
          Bytes.set_int64_le buf !pos (find l);
          pos := !pos + 8
      | Ascii s ->
          Bytes.blit_string s 0 buf !pos (String.length s);
          pos := !pos + String.length s
      | Align n ->
          let rem = !pos mod n in
          if rem <> 0 then pos := !pos + (n - rem)
      | Space n -> pos := !pos + n
      | La (rd, l) ->
          let target = find l in
          let off = Int64.sub target (pc ()) in
          let lo = Bits.sext (Int64.logand off 0xFFFL) ~width:12 in
          let hi = Bits.sext32 (Int64.sub off lo) in
          emit_ins (Instr.Auipc (rd, hi));
          emit_ins (Instr.Op_imm (Instr.Addi, rd, rd, lo))
      | Jump l ->
          emit_ins (Instr.Jal (0, Int64.sub (find l) (pc ())))
      | Jal_to (rd, l) ->
          emit_ins (Instr.Jal (rd, Int64.sub (find l) (pc ())))
      | Branch_to (op, rs1, rs2, l) ->
          emit_ins (Instr.Branch (op, rs1, rs2, Int64.sub (find l) (pc ())))
      | Call l -> emit_ins (Instr.Jal (1, Int64.sub (find l) (pc ())))
      | Li (rd, v) -> List.iter emit_ins (li_sequence rd v))
    items;
  let labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  (buf, labels)

module Reg = struct
  let zero = 0
  let ra = 1
  let sp = 2
  let gp = 3
  let tp = 4
  let t0 = 5
  let t1 = 6
  let t2 = 7
  let s0 = 8
  let s1 = 9
  let a0 = 10
  let a1 = 11
  let a2 = 12
  let a3 = 13
  let a4 = 14
  let a5 = 15
  let a6 = 16
  let a7 = 17
  let s2 = 18
  let s3 = 19
  let s4 = 20
  let s5 = 21
  let s6 = 22
  let s7 = 23
  let s8 = 24
  let s9 = 25
  let s10 = 26
  let s11 = 27
  let t3 = 28
  let t4 = 29
  let t5 = 30
  let t6 = 31
end

module I = struct
  let nop = Ins (Instr.Op_imm (Instr.Addi, 0, 0, 0L))
  let mv rd rs = Ins (Instr.Op_imm (Instr.Addi, rd, rs, 0L))
  let li rd v = Li (rd, v)
  let la rd l = La (rd, l)
  let add rd rs1 rs2 = Ins (Instr.Op (Instr.Add, rd, rs1, rs2))
  let addi rd rs1 imm = Ins (Instr.Op_imm (Instr.Addi, rd, rs1, imm))
  let sub rd rs1 rs2 = Ins (Instr.Op (Instr.Sub, rd, rs1, rs2))
  let and_ rd rs1 rs2 = Ins (Instr.Op (Instr.And, rd, rs1, rs2))
  let andi rd rs1 imm = Ins (Instr.Op_imm (Instr.Andi, rd, rs1, imm))
  let or_ rd rs1 rs2 = Ins (Instr.Op (Instr.Or, rd, rs1, rs2))
  let ori rd rs1 imm = Ins (Instr.Op_imm (Instr.Ori, rd, rs1, imm))
  let xor rd rs1 rs2 = Ins (Instr.Op (Instr.Xor, rd, rs1, rs2))
  let xori rd rs1 imm = Ins (Instr.Op_imm (Instr.Xori, rd, rs1, imm))
  let slli rd rs1 n = Ins (Instr.Op_imm (Instr.Slli, rd, rs1, Int64.of_int n))
  let srli rd rs1 n = Ins (Instr.Op_imm (Instr.Srli, rd, rs1, Int64.of_int n))
  let srai rd rs1 n = Ins (Instr.Op_imm (Instr.Srai, rd, rs1, Int64.of_int n))
  let sll rd rs1 rs2 = Ins (Instr.Op (Instr.Sll, rd, rs1, rs2))
  let srl rd rs1 rs2 = Ins (Instr.Op (Instr.Srl, rd, rs1, rs2))
  let sra rd rs1 rs2 = Ins (Instr.Op (Instr.Sra, rd, rs1, rs2))
  let mul rd rs1 rs2 = Ins (Instr.Op (Instr.Mul, rd, rs1, rs2))
  let div rd rs1 rs2 = Ins (Instr.Op (Instr.Div, rd, rs1, rs2))
  let rem rd rs1 rs2 = Ins (Instr.Op (Instr.Rem, rd, rs1, rs2))
  let sltu rd rs1 rs2 = Ins (Instr.Op (Instr.Sltu, rd, rs1, rs2))
  let slt rd rs1 rs2 = Ins (Instr.Op (Instr.Slt, rd, rs1, rs2))
  let seqz rd rs = Ins (Instr.Op_imm (Instr.Sltiu, rd, rs, 1L))
  let snez rd rs = Ins (Instr.Op (Instr.Sltu, rd, 0, rs))

  let load width unsigned rd imm rs1 =
    Ins (Instr.Load { width; unsigned; rd; rs1; imm })

  let ld rd imm rs1 = load Instr.D false rd imm rs1
  let lw rd imm rs1 = load Instr.W false rd imm rs1
  let lwu rd imm rs1 = load Instr.W true rd imm rs1
  let lh rd imm rs1 = load Instr.H false rd imm rs1
  let lhu rd imm rs1 = load Instr.H true rd imm rs1
  let lb rd imm rs1 = load Instr.B false rd imm rs1
  let lbu rd imm rs1 = load Instr.B true rd imm rs1
  let store width rs2 imm rs1 = Ins (Instr.Store { width; rs2; rs1; imm })
  let sd rs2 imm rs1 = store Instr.D rs2 imm rs1
  let sw rs2 imm rs1 = store Instr.W rs2 imm rs1
  let sh rs2 imm rs1 = store Instr.H rs2 imm rs1
  let sb rs2 imm rs1 = store Instr.B rs2 imm rs1
  let j l = Jump l
  let jal rd l = Jal_to (rd, l)
  let jr rs = Ins (Instr.Jalr (0, rs, 0L))
  let jalr rd rs imm = Ins (Instr.Jalr (rd, rs, imm))
  let call l = Call l
  let ret = Ins (Instr.Jalr (0, 1, 0L))
  let beq a b l = Branch_to (Instr.Beq, a, b, l)
  let bne a b l = Branch_to (Instr.Bne, a, b, l)
  let blt a b l = Branch_to (Instr.Blt, a, b, l)
  let bge a b l = Branch_to (Instr.Bge, a, b, l)
  let bltu a b l = Branch_to (Instr.Bltu, a, b, l)
  let bgeu a b l = Branch_to (Instr.Bgeu, a, b, l)
  let beqz a l = Branch_to (Instr.Beq, a, 0, l)
  let bnez a l = Branch_to (Instr.Bne, a, 0, l)

  let csr_op op rd csr src =
    Ins (Instr.Csr { op; rd; src = Instr.Reg src; csr })

  let csrrw rd csr rs1 = csr_op Instr.Csrrw rd csr rs1
  let csrrs rd csr rs1 = csr_op Instr.Csrrs rd csr rs1
  let csrrc rd csr rs1 = csr_op Instr.Csrrc rd csr rs1
  let csrr rd csr = csr_op Instr.Csrrs rd csr 0
  let csrw csr rs1 = csr_op Instr.Csrrw 0 csr rs1
  let csrs csr rs1 = csr_op Instr.Csrrs 0 csr rs1
  let csrc csr rs1 = csr_op Instr.Csrrc 0 csr rs1

  let csr_imm op csr z =
    Ins (Instr.Csr { op; rd = 0; src = Instr.Imm z; csr })

  let csrwi csr z = csr_imm Instr.Csrrw csr z
  let csrsi csr z = csr_imm Instr.Csrrs csr z
  let csrci csr z = csr_imm Instr.Csrrc csr z
  let ecall = Ins Instr.Ecall
  let ebreak = Ins Instr.Ebreak
  let mret = Ins Instr.Mret
  let sret = Ins Instr.Sret
  let wfi = Ins Instr.Wfi
  let fence = Ins Instr.Fence
  let fence_i = Ins Instr.Fence_i
  let sfence_vma = Ins (Instr.Sfence_vma (0, 0))

  let amo op wide rd rs2 rs1 =
    Ins (Instr.Amo { op; wide; aq = false; rl = false; rd; rs1; rs2 })

  let lr_d rd rs1 = amo Instr.Lr true rd 0 rs1
  let sc_d rd rs2 rs1 = amo Instr.Sc true rd rs2 rs1
  let amoadd_d rd rs2 rs1 = amo Instr.Amoadd true rd rs2 rs1
  let amoswap_w rd rs2 rs1 = amo Instr.Swap false rd rs2 rs1
  let label l = Label l
end
