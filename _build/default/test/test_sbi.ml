(* SBI specification tables: extension IDs, the spec-derived argument
   allow-list the sandbox policy consumes, and error codes. *)

module Sbi = Mir_sbi.Sbi

let test_extension_ids_are_ascii () =
  (* the v0.2+ extension IDs are ASCII mnemonics *)
  Helpers.check_i64 "TIME" 0x54494D45L Sbi.ext_time;
  Helpers.check_i64 "RFNC" 0x52464E43L Sbi.ext_rfence;
  Helpers.check_i64 "SRST" 0x53525354L Sbi.ext_srst;
  Helpers.check_i64 "DBCN" 0x4442434EL Sbi.ext_dbcn;
  Helpers.check_i64 "base" 0x10L Sbi.ext_base

let test_arg_counts_follow_spec () =
  let ck name ext fid expect =
    Alcotest.(check (option int)) name expect (Sbi.arg_count ~ext ~fid)
  in
  ck "set_timer(stime)" Sbi.ext_time Sbi.fid_time_set_timer (Some 1);
  ck "send_ipi(mask, base)" Sbi.ext_ipi Sbi.fid_ipi_send_ipi (Some 2);
  ck "remote fence_i" Sbi.ext_rfence Sbi.fid_rfence_fence_i (Some 2);
  ck "sfence_vma(mask,base,start,size)" Sbi.ext_rfence
    Sbi.fid_rfence_sfence_vma (Some 4);
  ck "sfence_vma_asid" Sbi.ext_rfence Sbi.fid_rfence_sfence_vma_asid (Some 5);
  ck "hart_start" Sbi.ext_hsm Sbi.fid_hsm_hart_start (Some 3);
  ck "probe" Sbi.ext_base Sbi.fid_base_probe_extension (Some 1);
  ck "get_spec_version" Sbi.ext_base Sbi.fid_base_get_spec_version (Some 0);
  ck "system_reset" Sbi.ext_srst Sbi.fid_srst_system_reset (Some 2);
  ck "console write_byte" Sbi.ext_dbcn Sbi.fid_dbcn_console_write_byte (Some 1);
  ck "legacy putchar" Sbi.ext_legacy_console_putchar 0L (Some 1)

let test_unknown_calls_have_no_allowlist () =
  Alcotest.(check (option int)) "unknown ext" None
    (Sbi.arg_count ~ext:0xDEADL ~fid:0L);
  Alcotest.(check (option int)) "unknown fid" None
    (Sbi.arg_count ~ext:Sbi.ext_time ~fid:99L)

let test_error_codes () =
  Helpers.check_i64 "success" 0L Sbi.success;
  Helpers.check_i64 "not supported" (-2L) Sbi.err_not_supported;
  Helpers.check_i64 "invalid param" (-3L) Sbi.err_invalid_param

let test_names () =
  Helpers.check_str "time" "time" (Sbi.ext_name Sbi.ext_time);
  Helpers.check_str "unknown formats" "ext-0xabc" (Sbi.ext_name 0xABCL)

let () =
  Alcotest.run "sbi"
    [
      ( "sbi",
        [
          Alcotest.test_case "ascii extension IDs" `Quick
            test_extension_ids_are_ascii;
          Alcotest.test_case "arg allow-list" `Quick test_arg_counts_follow_spec;
          Alcotest.test_case "unknown calls" `Quick
            test_unknown_calls_have_no_allowlist;
          Alcotest.test_case "error codes" `Quick test_error_codes;
          Alcotest.test_case "names" `Quick test_names;
        ] );
    ]
