(* Unit and property tests for the bit-manipulation kernel. *)

module Bits = Mir_util.Bits

let test_mask () =
  Helpers.check_i64 "mask 0" 0L (Bits.mask 0);
  Helpers.check_i64 "mask 1" 1L (Bits.mask 1);
  Helpers.check_i64 "mask 12" 0xFFFL (Bits.mask 12);
  Helpers.check_i64 "mask 63" Int64.max_int (Bits.mask 63);
  Helpers.check_i64 "mask 64" (-1L) (Bits.mask 64)

let test_extract () =
  Helpers.check_i64 "low nibble" 0xFL (Bits.extract 0xABCF0L ~lo:4 ~hi:7);
  Helpers.check_i64 "high bit set" 1L (Bits.extract Int64.min_int ~lo:63 ~hi:63);
  Helpers.check_i64 "full" (-1L) (Bits.extract (-1L) ~lo:0 ~hi:63)

let test_insert () =
  Helpers.check_i64 "set field" 0xAB0L
    (Bits.insert 0xA00L ~lo:4 ~hi:7 ~value:0xBL);
  Helpers.check_i64 "clear field" 0xA00L
    (Bits.insert 0xAF0L ~lo:4 ~hi:7 ~value:0L);
  Helpers.check_i64 "value truncated" 0x10L
    (Bits.insert 0L ~lo:4 ~hi:4 ~value:3L)

let test_sext () =
  Helpers.check_i64 "positive" 5L (Bits.sext 5L ~width:12);
  Helpers.check_i64 "negative 12-bit" (-1L) (Bits.sext 0xFFFL ~width:12);
  Helpers.check_i64 "negative 32-bit" (-2147483648L)
    (Bits.sext 0x80000000L ~width:32);
  Helpers.check_i64 "width 64 id" (-42L) (Bits.sext (-42L) ~width:64)

let test_bit_ops () =
  Helpers.check_bool "test set" true (Bits.test 0x8L 3);
  Helpers.check_bool "test clear" false (Bits.test 0x8L 2);
  Helpers.check_i64 "set" 0x9L (Bits.set 0x1L 3);
  Helpers.check_i64 "clear" 0x1L (Bits.clear 0x9L 3);
  Helpers.check_i64 "write true" 0x9L (Bits.write 0x1L 3 true);
  Helpers.check_i64 "write false" 0x1L (Bits.write 0x9L 3 false)

let test_alignment () =
  Helpers.check_bool "aligned 8" true (Bits.is_aligned 0x1000L ~size:8);
  Helpers.check_bool "unaligned" false (Bits.is_aligned 0x1001L ~size:2);
  Helpers.check_i64 "align down" 0x1FFCL (Bits.align_down 0x1FFFL ~size:4);
  Helpers.check_i64 "align down page" 0x1000L
    (Bits.align_down 0x1FFFL ~size:4096)

let test_unsigned_compare () =
  Helpers.check_bool "ult wraps" true (Bits.ult 5L (-1L));
  Helpers.check_bool "not ult" false (Bits.ult (-1L) 5L);
  Helpers.check_bool "ule equal" true (Bits.ule 7L 7L)

let test_popcount_ctz () =
  Helpers.check_int "popcount 0" 0 (Bits.popcount 0L);
  Helpers.check_int "popcount -1" 64 (Bits.popcount (-1L));
  Helpers.check_int "popcount 0xF0" 4 (Bits.popcount 0xF0L);
  Helpers.check_int "ctz 0" 64 (Bits.ctz 0L);
  Helpers.check_int "ctz 8" 3 (Bits.ctz 8L);
  Helpers.check_int "ctz odd" 0 (Bits.ctz 7L)

let prop_extract_insert =
  Helpers.qcheck_case "insert(extract) identity"
    (fun (v, lo, len) ->
      let lo = abs lo mod 60 in
      let len = 1 + (abs len mod (63 - lo)) in
      let hi = lo + len - 1 in
      let field = Bits.extract v ~lo ~hi in
      Bits.insert v ~lo ~hi ~value:field = v)
    QCheck.(triple int64 small_int small_int)

let prop_sext_idempotent =
  Helpers.qcheck_case "sext idempotent"
    (fun (v, w) ->
      let w = 1 + (abs w mod 64) in
      let s = Bits.sext v ~width:w in
      Bits.sext s ~width:w = s)
    QCheck.(pair int64 small_int)

let () =
  Alcotest.run "bits"
    [
      ( "bits",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "insert" `Quick test_insert;
          Alcotest.test_case "sext" `Quick test_sext;
          Alcotest.test_case "bit ops" `Quick test_bit_ops;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
          Alcotest.test_case "popcount/ctz" `Quick test_popcount_ctz;
          prop_extract_insert;
          prop_sext_idempotent;
        ] );
    ]
