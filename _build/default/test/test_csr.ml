(* CSR file semantics: views, WARL legalization, locks, resets. *)

module Csr_file = Mir_rv.Csr_file
module Csr_spec = Mir_rv.Csr_spec
module C = Mir_rv.Csr_addr
module Bits = Mir_util.Bits

let fresh ?(config = Csr_spec.default_config) () =
  Csr_file.create config ~hart_id:0

let test_reset_values () =
  let f = fresh () in
  Helpers.check_i64 "mstatus reset" 0L (Csr_file.read_raw f C.mstatus);
  Helpers.check_i64 "mhartid" 0L (Csr_file.read f C.mhartid);
  let f1 = Csr_file.create Csr_spec.default_config ~hart_id:3 in
  Helpers.check_i64 "mhartid hart 3" 3L (Csr_file.read f1 C.mhartid);
  (* misa advertises RV64IMSU *)
  let misa = Csr_file.read f C.misa in
  Alcotest.(check bool) "misa S" true (Bits.test misa 18);
  Alcotest.(check bool) "misa U" true (Bits.test misa 20);
  Alcotest.(check bool) "misa no H" false (Bits.test misa 7)

let test_mstatus_mpp_warl () =
  let f = fresh () in
  (* MPP = 2 is reserved: the write keeps the old value *)
  Csr_file.write f C.mstatus (Int64.shift_left 3L 11);
  Helpers.check_i64 "MPP=M stored" 3L
    (Bits.extract (Csr_file.read_raw f C.mstatus) ~lo:11 ~hi:12);
  Csr_file.write f C.mstatus (Int64.shift_left 2L 11);
  Helpers.check_i64 "MPP=2 rejected, keeps M" 3L
    (Bits.extract (Csr_file.read_raw f C.mstatus) ~lo:11 ~hi:12)

let test_mstatus_read_only_fields () =
  let f = fresh () in
  Csr_file.write f C.mstatus (-1L);
  let v = Csr_file.read f C.mstatus in
  (* UXL/SXL read as 2 (64-bit) *)
  Helpers.check_i64 "UXL" 2L (Bits.extract v ~lo:32 ~hi:33);
  Helpers.check_i64 "SXL" 2L (Bits.extract v ~lo:34 ~hi:35);
  (* FS/XS/VS are not implemented: stay zero *)
  Helpers.check_i64 "FS" 0L (Bits.extract v ~lo:13 ~hi:14)

let test_sstatus_view () =
  let f = fresh () in
  (* writing sstatus only touches the S-visible fields of mstatus *)
  Csr_file.write f C.mstatus (Bits.set 0L 3) (* MIE *);
  Csr_file.write f C.sstatus (-1L);
  let m = Csr_file.read_raw f C.mstatus in
  Alcotest.(check bool) "SIE set via sstatus" true (Bits.test m 1);
  Alcotest.(check bool) "SUM set via sstatus" true (Bits.test m 18);
  Alcotest.(check bool) "MIE untouched" true (Bits.test m 3);
  Alcotest.(check bool) "TSR untouched" false (Bits.test m 22);
  (* reading sstatus masks out M fields *)
  let s = Csr_file.read f C.sstatus in
  Alcotest.(check bool) "MIE invisible in sstatus" false (Bits.test s 3)

let test_sie_sip_views () =
  let f = fresh () in
  Csr_file.write f C.mideleg Csr_spec.Irq.s_mask;
  Csr_file.write f C.mie (-1L);
  (* sie shows only delegated bits *)
  Helpers.check_i64 "sie = mie & mideleg" Csr_spec.Irq.s_mask
    (Csr_file.read f C.sie);
  (* writing sie cannot touch M bits *)
  Csr_file.write f C.sie 0L;
  let mie = Csr_file.read_raw f C.mie in
  Helpers.check_i64 "M bits preserved" Csr_spec.Irq.m_mask
    (Int64.logand mie (Int64.logor Csr_spec.Irq.m_mask Csr_spec.Irq.s_mask));
  (* sip: only SSIP writable, and only when delegated *)
  Csr_file.write f C.sip (-1L);
  Helpers.check_i64 "only SSIP set" Csr_spec.Irq.ssip
    (Csr_file.read_raw f C.mip)

let test_satp_warl () =
  let f = fresh () in
  let sv39 = Int64.logor (Int64.shift_left 8L 60) 0x12345L in
  Csr_file.write f C.satp sv39;
  Helpers.check_i64 "sv39 accepted" sv39 (Csr_file.read f C.satp);
  (* mode 5 is reserved: the whole write is dropped *)
  Csr_file.write f C.satp (Int64.shift_left 5L 60);
  Helpers.check_i64 "reserved mode keeps old" sv39 (Csr_file.read f C.satp);
  Csr_file.write f C.satp 0L;
  Helpers.check_i64 "bare accepted" 0L (Csr_file.read f C.satp)

let test_tvec_mode_warl () =
  let f = fresh () in
  Csr_file.write f C.mtvec 0x80000001L;
  Helpers.check_i64 "vectored ok" 0x80000001L (Csr_file.read f C.mtvec);
  Csr_file.write f C.mtvec 0x90000003L;
  (* mode 3 reserved: mode bits keep the old value (1) *)
  Helpers.check_i64 "mode field kept" 0x90000001L (Csr_file.read f C.mtvec)

let test_epc_alignment () =
  let f = fresh () in
  Csr_file.write f C.mepc 0x80000003L;
  Helpers.check_i64 "mepc low bits cleared" 0x80000000L
    (Csr_file.read f C.mepc);
  Csr_file.write f C.sepc 0x80000002L;
  Helpers.check_i64 "sepc low bits cleared" 0x80000000L
    (Csr_file.read f C.sepc)

let test_pmpcfg_w_without_r_cleared () =
  let f = fresh () in
  (* W=1,R=0 is reserved: W must be dropped *)
  Csr_file.write f (C.pmpcfg 0) 0x1AL (* NAPOT, W=1, R=0, X=0 *);
  let b = Int64.logand (Csr_file.read f (C.pmpcfg 0)) 0xFFL in
  Helpers.check_i64 "W cleared" 0x18L b

let test_pmp_lock_blocks_writes () =
  let f = fresh () in
  Csr_file.write f (C.pmpaddr 0) 0x1000L;
  Csr_file.write f (C.pmpcfg 0) 0x98L (* locked NAPOT *);
  (* cfg byte is locked: further cfg writes to that byte are ignored *)
  Csr_file.write f (C.pmpcfg 0) 0x1FL;
  Helpers.check_i64 "locked cfg keeps value" 0x98L
    (Int64.logand (Csr_file.read f (C.pmpcfg 0)) 0xFFL);
  (* the locked entry's address register is locked too *)
  Csr_file.write f (C.pmpaddr 0) 0x2000L;
  Helpers.check_i64 "locked addr keeps value" 0x1000L
    (Csr_file.read f (C.pmpaddr 0))

let test_locked_tor_locks_previous_addr () =
  let f = fresh () in
  Csr_file.write f (C.pmpaddr 0) 0x1000L;
  Csr_file.write f (C.pmpaddr 1) 0x2000L;
  (* entry 1 = locked TOR: pmpaddr0 becomes read-only *)
  Csr_file.write f (C.pmpcfg 0) 0x8900L;
  Csr_file.write f (C.pmpaddr 0) 0x3000L;
  Helpers.check_i64 "pmpaddr0 locked by TOR" 0x1000L
    (Csr_file.read f (C.pmpaddr 0))

let test_mideleg_hardwired_mode () =
  let cfg =
    { Csr_spec.default_config with Csr_spec.force_s_interrupt_delegation = true }
  in
  let f = fresh ~config:cfg () in
  Helpers.check_i64 "reset has S bits" Csr_spec.Irq.s_mask
    (Csr_file.read f C.mideleg);
  Csr_file.write f C.mideleg 0L;
  Helpers.check_i64 "cannot clear S bits" Csr_spec.Irq.s_mask
    (Csr_file.read f C.mideleg)

let test_medeleg_mask () =
  let f = fresh () in
  Csr_file.write f C.medeleg (-1L);
  (* ecall-from-M (bit 11) is never delegable *)
  Alcotest.(check bool) "bit 11 clear" false
    (Bits.test (Csr_file.read f C.medeleg) 11)

let test_config_gates_existence () =
  let f = fresh () in
  Alcotest.(check bool) "no stimecmp" false (Csr_file.exists f C.stimecmp);
  Alcotest.(check bool) "no hstatus" false (Csr_file.exists f C.hstatus);
  let cfg =
    { Csr_spec.default_config with Csr_spec.has_sstc = true; has_h = true }
  in
  let f2 = fresh ~config:cfg () in
  Alcotest.(check bool) "stimecmp exists" true (Csr_file.exists f2 C.stimecmp);
  Alcotest.(check bool) "hstatus exists" true (Csr_file.exists f2 C.hstatus);
  Alcotest.(check bool) "vsatp exists" true (Csr_file.exists f2 C.vsatp);
  Alcotest.(check bool) "misa has H" true
    (Bits.test (Csr_file.read f2 C.misa) 7)

let test_pmp_count_gates_registers () =
  let cfg = { Csr_spec.default_config with Csr_spec.pmp_count = 4 } in
  let f = fresh ~config:cfg () in
  Alcotest.(check bool) "pmpaddr3 exists" true (Csr_file.exists f (C.pmpaddr 3));
  Alcotest.(check bool) "pmpaddr4 absent" false
    (Csr_file.exists f (C.pmpaddr 4));
  (* writes beyond the implemented count are zeroed in pmpcfg; the
     implemented bytes keep RWX+NAPOT+L (reserved bits 5:6 cleared) *)
  Csr_file.write f (C.pmpcfg 0) (-1L);
  Helpers.check_i64 "only 4 cfg bytes stored" 0x9F9F9F9FL
    (Csr_file.read f (C.pmpcfg 0))

let test_all_addresses_counts () =
  let n = List.length (Csr_spec.all_addresses Csr_spec.default_config) in
  (* the paper's Miralis supports 84 CSRs; ours implements more
     (8 pmpaddr + 1 pmpcfg + machine + supervisor + counters) *)
  Alcotest.(check bool)
    (Printf.sprintf "default config implements %d CSRs (>= 30)" n)
    true (n >= 30);
  let full =
    {
      Csr_spec.default_config with
      Csr_spec.pmp_count = 64;
      has_sstc = true;
      has_h = true;
      custom_csrs = [ C.custom0 ];
    }
  in
  let nf = List.length (Csr_spec.all_addresses full) in
  Alcotest.(check bool)
    (Printf.sprintf "full config implements %d CSRs (>= 84, paper's count)" nf)
    true (nf >= 84)

let test_pmp_cache_coherence () =
  let f = fresh () in
  Csr_file.write f (C.pmpaddr 0) (-1L);
  Csr_file.write f (C.pmpcfg 0) 0x1FL;
  let r1 = Csr_file.pmp_ranges f in
  Alcotest.(check bool) "one active range" true
    (Array.length r1.Mir_rv.Pmp.items = 1);
  (* a raw write must invalidate the cache *)
  Csr_file.write_raw f (C.pmpcfg 0) 0L;
  let r2 = Csr_file.pmp_ranges f in
  Alcotest.(check bool) "cache refreshed" true
    (Array.length r2.Mir_rv.Pmp.items = 0)

let () =
  Alcotest.run "csr"
    [
      ( "csr",
        [
          Alcotest.test_case "reset values" `Quick test_reset_values;
          Alcotest.test_case "mstatus MPP WARL" `Quick test_mstatus_mpp_warl;
          Alcotest.test_case "mstatus RO fields" `Quick
            test_mstatus_read_only_fields;
          Alcotest.test_case "sstatus view" `Quick test_sstatus_view;
          Alcotest.test_case "sie/sip views" `Quick test_sie_sip_views;
          Alcotest.test_case "satp WARL" `Quick test_satp_warl;
          Alcotest.test_case "tvec mode WARL" `Quick test_tvec_mode_warl;
          Alcotest.test_case "epc alignment" `Quick test_epc_alignment;
          Alcotest.test_case "pmpcfg W/R reserved" `Quick
            test_pmpcfg_w_without_r_cleared;
          Alcotest.test_case "pmp lock" `Quick test_pmp_lock_blocks_writes;
          Alcotest.test_case "locked TOR locks prev addr" `Quick
            test_locked_tor_locks_previous_addr;
          Alcotest.test_case "mideleg hardwired" `Quick
            test_mideleg_hardwired_mode;
          Alcotest.test_case "medeleg mask" `Quick test_medeleg_mask;
          Alcotest.test_case "config gates CSRs" `Quick
            test_config_gates_existence;
          Alcotest.test_case "pmp_count gates" `Quick
            test_pmp_count_gates_registers;
          Alcotest.test_case "CSR counts" `Quick test_all_addresses_counts;
          Alcotest.test_case "pmp cache coherence" `Quick
            test_pmp_cache_coherence;
        ] );
    ]
