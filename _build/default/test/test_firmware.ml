(* Firmware-suite tests (paper Q1): RustSBI-like, Zephyr-like and the
   opaque Star64 dump each pass their own checks natively AND under
   Miralis, with identical observable behaviour. *)

module Setup = Mir_harness.Setup
module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine

let vf2 = Platform.visionfive2

let smoke =
  [
    Script.Putchar 'r';
    Script.Rdtime;
    Script.Set_timer 100L;
    Script.Tick_wfi 50L;
    Script.Ipi_self;
    Script.Misaligned_load;
    Script.Misaligned_store;
    Script.Putchar '!';
    Script.End;
  ]

let observe ~firmware mode =
  let sys = Setup.create ~firmware vf2 mode in
  Setup.run_scripts ~max_instrs:20_000_000L sys [ smoke ];
  ( Setup.uart_output sys,
    Script.sti_count sys.Setup.machine ~hart:0,
    Script.ssi_count sys.Setup.machine ~hart:0,
    sys.Setup.machine.Machine.poweroff )

let test_rustsbi_native () =
  let u, sti, ssi, off = observe ~firmware:Mir_firmware.Rustsbi_like.image
      Setup.Native in
  Helpers.check_str "uart" "r!" u;
  Alcotest.(check bool) "sti" true (sti >= 1L);
  Alcotest.(check bool) "ssi" true (ssi >= 1L);
  Alcotest.(check bool) "poweroff" true off

let test_rustsbi_differential () =
  (* Exact interrupt counts are timing-dependent (a slower path can
     let an armed timer fire before the next op re-arms it); the
     timing-insensitive observables must match across modes. *)
  let stable (u, sti, ssi, off) = (u, sti >= 1L, ssi >= 1L, off) in
  let n = observe ~firmware:Mir_firmware.Rustsbi_like.image Setup.Native in
  let v = observe ~firmware:Mir_firmware.Rustsbi_like.image Setup.Virtualized in
  let nf =
    observe ~firmware:Mir_firmware.Rustsbi_like.image
      Setup.Virtualized_no_offload
  in
  Alcotest.(check bool) "native = virtualized" true (stable n = stable v);
  Alcotest.(check bool) "native = no-offload" true (stable n = stable nf)

let run_zephyr mode =
  let sys = Setup.create ~firmware:Mir_firmware.Zephyr_like.image vf2 mode in
  Setup.run_scripts ~max_instrs:20_000_000L sys [];
  Setup.uart_output sys

let test_zephyr_native () =
  Helpers.check_str "zephyr output"
    Mir_firmware.Zephyr_like.expected_output
    (run_zephyr Setup.Native)

let test_zephyr_virtualized () =
  Helpers.check_str "zephyr output"
    Mir_firmware.Zephyr_like.expected_output
    (run_zephyr Setup.Virtualized)

let test_star64_opaque () =
  (* The flash dump boots under Miralis with no symbol information. *)
  let n = observe ~firmware:Mir_firmware.Star64.image Setup.Native in
  let v = observe ~firmware:Mir_firmware.Star64.image Setup.Virtualized in
  let u, _, _, off = v in
  Alcotest.(check bool) "powered off" true off;
  Helpers.check_str "uart" "r!" u;
  Alcotest.(check bool) "native = virtualized" true (n = v);
  Alcotest.(check bool) "plausible image size" true
    (Mir_firmware.Star64.size_kib ~nharts:4
       ~kernel_entry:Mir_kernel.Interp_kernel.entry
     > 0)

let () =
  Alcotest.run "firmware"
    [
      ( "firmware",
        [
          Alcotest.test_case "rustsbi-like native" `Quick test_rustsbi_native;
          Alcotest.test_case "rustsbi-like differential" `Quick
            test_rustsbi_differential;
          Alcotest.test_case "zephyr-like native" `Quick test_zephyr_native;
          Alcotest.test_case "zephyr-like virtualized" `Quick
            test_zephyr_virtualized;
          Alcotest.test_case "star64 opaque dump" `Quick test_star64_opaque;
        ] );
    ]
