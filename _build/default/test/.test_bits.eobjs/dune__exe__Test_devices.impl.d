test/test_devices.ml: Alcotest Bytes Char Helpers Int64 Mir_rv String
