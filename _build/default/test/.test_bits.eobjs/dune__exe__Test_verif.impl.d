test/test_verif.ml: Alcotest Mir_verif Miralis
