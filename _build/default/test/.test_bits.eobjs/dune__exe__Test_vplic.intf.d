test/test_vplic.mli:
