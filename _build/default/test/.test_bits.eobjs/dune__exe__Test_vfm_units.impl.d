test/test_vfm_units.ml: Alcotest Array Helpers Int64 List Mir_rv Mir_sbi Mir_util Miralis
