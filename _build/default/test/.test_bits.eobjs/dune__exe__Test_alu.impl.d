test/test_alu.ml: Alcotest Helpers Int64 Mir_rv Mir_util QCheck
