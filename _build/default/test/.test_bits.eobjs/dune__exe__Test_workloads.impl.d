test/test_workloads.ml: Alcotest Helpers List Mir_harness Mir_kernel Mir_platform Mir_rv Mir_workloads Option Printf
