test/test_firmware.ml: Alcotest Helpers Mir_firmware Mir_harness Mir_kernel Mir_platform Mir_rv
