test/test_policies.ml: Alcotest Array Helpers Int64 List Mir_firmware Mir_harness Mir_kernel Mir_platform Mir_policies Mir_rv Mir_sbi Miralis Option String
