test/test_policies.mli:
