test/test_csr.ml: Alcotest Array Helpers Int64 List Mir_rv Mir_util Printf
