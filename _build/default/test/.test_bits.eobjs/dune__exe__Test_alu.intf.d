test/test_alu.mli:
