test/test_integration.ml: Alcotest Helpers List Mir_harness Mir_kernel Mir_platform Mir_rv Miralis Option Printf
