test/test_machine.ml: Alcotest Array Char Helpers Int64 Mir_asm Mir_rv Option
