test/test_sbi.ml: Alcotest Helpers Mir_sbi
