test/test_pmp.mli:
