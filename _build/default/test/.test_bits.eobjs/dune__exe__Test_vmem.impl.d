test/test_vmem.ml: Alcotest Hashtbl Int64 Mir_rv Mir_util Option
