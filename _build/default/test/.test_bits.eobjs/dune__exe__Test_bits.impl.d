test/test_bits.ml: Alcotest Helpers Int64 Mir_util QCheck
