test/test_asm.ml: Alcotest Helpers Int64 List Mir_asm Mir_rv Option Printf QCheck
