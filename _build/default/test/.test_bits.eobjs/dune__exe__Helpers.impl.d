test/helpers.ml: Alcotest Array Mir_asm Mir_rv QCheck QCheck_alcotest
