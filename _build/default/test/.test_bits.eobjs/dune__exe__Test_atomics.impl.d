test/test_atomics.ml: Alcotest Helpers Int64 Mir_asm Mir_rv Mir_util Option QCheck QCheck_alcotest
