test/test_decode.mli:
