test/test_decode.ml: Alcotest Int64 List Mir_rv Mir_util QCheck QCheck_alcotest
