test/test_util.ml: Alcotest Array Helpers List Mir_util Printf String
