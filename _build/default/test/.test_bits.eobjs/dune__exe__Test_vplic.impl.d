test/test_vplic.ml: Alcotest Helpers Int64 Mir_asm Mir_firmware Mir_harness Mir_kernel Mir_platform Mir_rv Miralis
