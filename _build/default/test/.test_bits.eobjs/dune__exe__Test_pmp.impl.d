test/test_pmp.ml: Alcotest Array Helpers Int64 List Mir_rv Mir_util Printf QCheck
