test/test_sbi.mli:
