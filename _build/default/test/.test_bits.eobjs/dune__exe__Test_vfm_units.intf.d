test/test_vfm_units.mli:
