test/test_csr.mli:
