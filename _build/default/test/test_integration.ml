(* End-to-end integration: the same unmodified MiniSBI firmware image
   and interpreter kernel run (a) natively in M-mode, (b) under
   Miralis with fast-path offload, and (c) under Miralis without
   offload — and must behave identically (paper Q1). *)

module Setup = Mir_harness.Setup
module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine

let vf2 = Platform.visionfive2

let smoke_script =
  [
    Script.Putchar 'A';
    Script.Rdtime;
    Script.Set_timer 100L;
    Script.Tick_wfi 50L;
    Script.Ipi_self;
    Script.Compute 50L;
    Script.Misaligned_load;
    Script.Misaligned_store;
    Script.Putchar 'Z';
    Script.End;
  ]

let run_mode mode =
  let sys = Setup.create vf2 mode in
  Setup.run_scripts sys [ smoke_script ];
  sys

let check_smoke name sys =
  Alcotest.(check bool)
    (name ^ ": powered off") true sys.Setup.machine.Machine.poweroff;
  Helpers.check_str (name ^ ": uart") "AZ" (Setup.uart_output sys);
  Alcotest.(check bool)
    (name ^ ": got a timer tick") true
    (Script.sti_count sys.Setup.machine ~hart:0 >= 1L);
  Alcotest.(check bool)
    (name ^ ": got the self IPI") true
    (Script.ssi_count sys.Setup.machine ~hart:0 >= 1L)

let test_native () = check_smoke "native" (run_mode Setup.Native)

let test_virtualized () =
  let sys = run_mode Setup.Virtualized in
  check_smoke "miralis" sys;
  let stats = Option.get (Setup.stats sys) in
  Alcotest.(check bool)
    "no violation" true
    ((Option.get sys.Setup.miralis).Miralis.Monitor.violation = None);
  (* With offload, the hot operations must not enter the firmware. *)
  Alcotest.(check bool)
    "offload hits" true
    (Miralis.Vfm_stats.offload_hits stats >= 4)

let test_no_offload () =
  let sys = run_mode Setup.Virtualized_no_offload in
  check_smoke "no-offload" sys;
  let stats = Option.get (Setup.stats sys) in
  Alcotest.(check int) "no offload hits" 0
    (Miralis.Vfm_stats.offload_hits stats);
  Alcotest.(check bool)
    "world switches happened" true
    (stats.Miralis.Vfm_stats.world_switches > 3);
  Alcotest.(check bool)
    "instructions were emulated" true
    (stats.Miralis.Vfm_stats.emulated_instrs > 20)

(* Differential run: kernel-observable behaviour must be identical in
   all three modes. *)
let test_differential () =
  let script =
    [
      Script.Putchar 'h';
      Script.Rdtime;
      Script.Compute 100L;
      Script.Ipi_self;
      Script.Misaligned_load;
      Script.Set_timer 200L;
      Script.Tick_wfi 100L;
      Script.Putchar 'i';
      Script.Loop 3L;
      Script.End;
    ]
  in
  let observe mode =
    let sys = Setup.create vf2 mode in
    Setup.run_scripts sys [ script ];
    ( Setup.uart_output sys,
      Script.sti_count sys.Setup.machine ~hart:0,
      Script.ssi_count sys.Setup.machine ~hart:0,
      sys.Setup.machine.Machine.poweroff )
  in
  let n = observe Setup.Native in
  let v = observe Setup.Virtualized in
  let nf = observe Setup.Virtualized_no_offload in
  let pp (u, sti, ssi, off) =
    Printf.sprintf "uart=%S sti=%Ld ssi=%Ld off=%b" u sti ssi off
  in
  Helpers.check_str "native = virtualized" (pp n) (pp v);
  Helpers.check_str "native = no-offload" (pp n) (pp nf)

let test_multihart_ipi_all () =
  let script0 =
    [ Script.Compute 100L; Script.Ipi_all; Script.Compute 2000L; Script.End ]
  in
  let others = [ Script.Halt ] in
  let observe mode =
    let sys = Setup.create vf2 mode in
    Setup.run_scripts sys [ script0; others; others; others ];
    List.init 4 (fun h -> Script.ssi_count sys.Setup.machine ~hart:h)
  in
  let n = observe Setup.Native in
  let v = observe Setup.Virtualized in
  (* Hart 0 acknowledges its own SSI through the handler; parked harts
     receive the SSI in wfi (counted too, since sie is enabled before
     halting... they halt before enabling - only hart 0 counts). *)
  Alcotest.(check bool) "hart0 got ipi (native)" true (List.nth n 0 >= 1L);
  Alcotest.(check bool) "hart0 got ipi (miralis)" true (List.nth v 0 >= 1L)

let test_world_switch_rate_low_with_offload () =
  (* Paper: ~0.5 world switches per second with offload across the
     microbenchmarks. With offload every hot op stays in Miralis, so a
     trap-heavy script must cause (almost) no world switches. *)
  let script =
    List.concat (List.init 200 (fun _ -> [ Script.Rdtime; Script.Ipi_self ]))
    @ [ Script.End ]
  in
  let sys = Setup.create vf2 Setup.Virtualized in
  Setup.run_scripts sys [ script ];
  let stats = Option.get (Setup.stats sys) in
  Alcotest.(check bool)
    "few world switches" true
    (stats.Miralis.Vfm_stats.world_switches <= 2);
  Alcotest.(check bool)
    "many offload hits" true
    (Miralis.Vfm_stats.offload_hits stats >= 400)

let test_p550_platform_with_custom_csrs () =
  (* The P550 model allows four custom CSRs through to hardware and
     has the H extension; the same firmware boots. *)
  let sys = Setup.create Platform.premier_p550 Setup.Virtualized in
  Setup.run_scripts sys [ [ Script.Putchar 'P'; Script.End ] ];
  Helpers.check_str "p550 uart" "P" (Setup.uart_output sys);
  Alcotest.(check bool)
    "no violation" true
    ((Option.get sys.Setup.miralis).Miralis.Monitor.violation = None)

let test_paging_differential () =
  (* The kernel enables Sv39 mid-run; misaligned accesses then force
     the firmware's MPRV path (and, under Miralis, the MPRV-emulation
     PMP trick) through real page tables. All three modes must agree. *)
  let script sys =
    [
      Script.Enable_paging (Mir_kernel.Paging.identity_satp sys.Setup.machine);
      Script.Putchar 'p';
      Script.Misaligned_load;
      Script.Misaligned_store;
      Script.Rdtime;
      Script.Set_timer 150L;
      Script.Tick_wfi 80L;
      Script.Putchar 'g';
      Script.End;
    ]
  in
  let observe mode =
    let sys = Setup.create vf2 mode in
    Setup.run_scripts sys [ script sys ];
    ( Setup.uart_output sys,
      sys.Setup.machine.Machine.poweroff,
      Script.sti_count sys.Setup.machine ~hart:0 >= 1L )
  in
  let n = observe Setup.Native in
  let v = observe Setup.Virtualized in
  let nf = observe Setup.Virtualized_no_offload in
  Alcotest.(check bool) "native runs paged" true (n = ("pg", true, true));
  Alcotest.(check bool) "virtualized agrees" true (n = v);
  Alcotest.(check bool) "no-offload agrees" true (n = nf)

let test_qemu_virt_no_traps () =
  (* On an RVA23-class platform (time CSR + Sstc) rdtime never traps:
     Miralis sees no OS traps from the hot loop at all. *)
  let script =
    List.init 100 (fun _ -> Script.Rdtime) @ [ Script.End ]
  in
  let sys = Setup.create Platform.qemu_virt Setup.Virtualized in
  Setup.run_scripts sys [ script ];
  let stats = Option.get (Setup.stats sys) in
  Alcotest.(check int) "no time-read offloads" 0
    stats.Miralis.Vfm_stats.offload_time_read

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "native boot" `Quick test_native;
          Alcotest.test_case "virtualized boot" `Quick test_virtualized;
          Alcotest.test_case "no-offload boot" `Quick test_no_offload;
          Alcotest.test_case "differential 3 modes" `Quick test_differential;
          Alcotest.test_case "multihart ipi" `Quick test_multihart_ipi_all;
          Alcotest.test_case "world switch rate" `Quick
            test_world_switch_rate_low_with_offload;
          Alcotest.test_case "p550 custom CSRs" `Quick
            test_p550_platform_with_custom_csrs;
          Alcotest.test_case "qemu-virt no traps" `Quick
            test_qemu_virt_no_traps;
          Alcotest.test_case "paging differential" `Quick
            test_paging_differential;
        ] );
    ]
