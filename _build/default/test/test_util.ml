(* Utility-layer tests: statistics, PRNG, table rendering. *)

module Stats = Mir_util.Stats
module Prng = Mir_util.Prng
module Tablefmt = Mir_util.Tablefmt

let test_stats_basic () =
  let s = Stats.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Stats.total s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.stddev s)

let test_stats_percentiles () =
  let s = Stats.of_list (List.init 101 float_of_int) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile s 0.);
  Alcotest.(check (float 1e-9)) "median" 50.0 (Stats.median s);
  Alcotest.(check (float 1e-9)) "p90" 90.0 (Stats.percentile s 90.);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.);
  (* interpolation between two points *)
  let s2 = Stats.of_list [ 0.; 10. ] in
  Alcotest.(check (float 1e-9)) "interpolated" 2.5 (Stats.percentile s2 25.)

let test_stats_add_after_sort () =
  let s = Stats.of_list [ 3.; 1. ] in
  ignore (Stats.median s);
  Stats.add s 2.;
  Alcotest.(check (float 1e-9)) "median after re-add" 2.0 (Stats.median s)

let test_stats_histogram () =
  let s = Stats.of_list [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ] in
  let h = Stats.histogram s ~bins:2 in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "all counted" 10 (c0 + c1)

let test_prng_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Helpers.check_i64 "same stream" (Prng.next a) (Prng.next b)
  done;
  let c = Prng.create ~seed:43L in
  Alcotest.(check bool) "different seed differs" true
    (Prng.next a <> Prng.next c)

let test_prng_ranges () =
  let p = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Prng.int_below p 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let f = Prng.float p in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_distributions () =
  let p = Prng.create ~seed:11L in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential p ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean %.2f near 5" mean)
    true
    (mean > 4.5 && mean < 5.5);
  let acc2 = ref 0.0 in
  for _ = 1 to n do
    acc2 := !acc2 +. Prng.gaussian p ~mu:10.0 ~sigma:2.0
  done;
  let mean2 = !acc2 /. float_of_int n in
  Alcotest.(check bool) "gaussian mean near 10" true
    (mean2 > 9.8 && mean2 < 10.2)

let test_prng_split_independent () =
  let p = Prng.create ~seed:1L in
  let q = Prng.split p in
  Alcotest.(check bool) "streams differ" true (Prng.next p <> Prng.next q)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let s =
    Tablefmt.render ~title:"T" ~headers:[ "a"; "b" ]
      [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains row" true (contains_sub s "longer");
  Alcotest.(check bool) "right-aligned numeric column" true
    (contains_sub s "| 22 |")

let test_bar_chart () =
  let c = Tablefmt.bar_chart () [ ("a", 2.0); ("bb", 1.0) ] in
  Alcotest.(check bool) "bars scale" true (contains_sub c "##");
  Alcotest.(check bool) "labels padded" true (contains_sub c "a  |")

let test_series_chart () =
  let c =
    Tablefmt.series_chart ~labels:[ "p50"; "p99" ]
      [ ("x", [ 1.0; 2.0 ]); ("y", [ 3.0 ]) ]
  in
  Alcotest.(check bool) "missing value dashed" true (contains_sub c "-")

let () =
  Alcotest.run "util"
    [
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basic;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "add after sort" `Quick test_stats_add_after_sort;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "distributions" `Quick test_prng_distributions;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "series chart" `Quick test_series_chart;
        ] );
    ]
