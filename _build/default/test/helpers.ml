(* Shared test utilities. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Asm = Mir_asm.Asm

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Build a machine, assemble a program at the RAM base, reset hart 0
   there, and return the machine. *)
let machine_with ?(config = Machine.default_config) prog =
  let m = Machine.create config in
  let image, labels = Asm.assemble ~base:config.Machine.ram_base prog in
  Machine.load_program m config.Machine.ram_base image;
  Array.iter (fun h -> Hart.reset h ~pc:config.Machine.ram_base) m.Machine.harts;
  (m, labels)

(* Run until power-off (or bounded), returning hart 0. *)
let run_to_completion ?(max_instrs = 2_000_000L) m =
  Machine.run ~max_instrs m;
  m.Machine.harts.(0)

let qcheck_case ?(count = 500) name law gen =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen law)
