(* Device-model unit tests: CLINT, PLIC, UART, block device, NIC. *)

module Clint = Mir_rv.Clint
module Plic = Mir_rv.Plic
module Uart = Mir_rv.Uart
module Blockdev = Mir_rv.Blockdev
module Nic = Mir_rv.Nic
module Memory = Mir_rv.Memory
module Device = Mir_rv.Device

let test_clint_registers () =
  let c = Clint.create ~nharts:2 in
  let d = Clint.device c ~base:0L in
  (* msip *)
  d.Device.store (Clint.msip_offset 1) 4 1L;
  Alcotest.(check bool) "msip1 set" true (Clint.msip c 1);
  Alcotest.(check bool) "msip0 clear" false (Clint.msip c 0);
  Helpers.check_i64 "msip read" 1L (d.Device.load (Clint.msip_offset 1) 4);
  (* mtimecmp, 64-bit and split 32-bit halves *)
  d.Device.store (Clint.mtimecmp_offset 0) 8 0x1122334455667788L;
  Helpers.check_i64 "mtimecmp" 0x1122334455667788L (Clint.mtimecmp c 0);
  d.Device.store (Clint.mtimecmp_offset 1) 4 0xAAAAAAAAL;
  d.Device.store (Int64.add (Clint.mtimecmp_offset 1) 4L) 4 0xBBBBBBBBL;
  Helpers.check_i64 "half writes" 0xBBBBBBBBAAAAAAAAL (Clint.mtimecmp c 1);
  (* mtime and the timer line *)
  Clint.set_mtime c 100L;
  Helpers.check_i64 "mtime read" 100L (d.Device.load Clint.mtime_offset 8);
  Clint.set_mtimecmp c 0 100L;
  Alcotest.(check bool) "mtip at deadline" true (Clint.mtip c 0);
  Clint.set_mtimecmp c 0 101L;
  Alcotest.(check bool) "not before deadline" false (Clint.mtip c 0);
  Clint.advance c 1L;
  Alcotest.(check bool) "fires after advance" true (Clint.mtip c 0)

let test_plic_priorities_and_claim () =
  let p = Plic.create ~nharts:1 ~nsources:4 in
  let d = Plic.device p ~base:0L in
  (* enable sources 1 and 2 for context 0 (M of hart 0) *)
  d.Device.store 0x2000L 4 0b110L;
  d.Device.store 4L 4 1L (* prio(src1) = 1 *);
  d.Device.store 8L 4 3L (* prio(src2) = 3 *);
  Plic.raise_irq p 1;
  Plic.raise_irq p 2;
  Alcotest.(check bool) "meip high" true (Plic.meip p 0);
  (* the higher-priority source is claimed first *)
  Alcotest.(check int) "claims src2" 2 (Plic.claim p ~ctx:0);
  Alcotest.(check int) "then src1" 1 (Plic.claim p ~ctx:0);
  Alcotest.(check int) "then none" 0 (Plic.claim p ~ctx:0);
  Plic.complete p ~ctx:0 2;
  Alcotest.(check int) "src2 claimable again" 2 (Plic.claim p ~ctx:0);
  Plic.lower_irq p 1;
  Plic.lower_irq p 2

let test_plic_threshold () =
  let p = Plic.create ~nharts:1 ~nsources:2 in
  let d = Plic.device p ~base:0L in
  d.Device.store 0x2000L 4 0b10L;
  d.Device.store 4L 4 2L;
  d.Device.store 0x200000L 4 2L (* threshold 2: prio must exceed it *);
  Plic.raise_irq p 1;
  Alcotest.(check bool) "masked by threshold" false (Plic.meip p 0);
  d.Device.store 0x200000L 4 1L;
  Alcotest.(check bool) "above threshold" true (Plic.meip p 0)

let test_plic_s_context () =
  let p = Plic.create ~nharts:2 ~nsources:2 in
  let d = Plic.device p ~base:0L in
  (* context 3 = S-mode of hart 1 *)
  d.Device.store (Int64.of_int (0x2000 + (3 * 0x80))) 4 0b10L;
  d.Device.store 4L 4 1L;
  Plic.raise_irq p 1;
  Alcotest.(check bool) "seip hart1" true (Plic.seip p 1);
  Alcotest.(check bool) "not hart0" false (Plic.seip p 0);
  Alcotest.(check bool) "not M context" false (Plic.meip p 1)

let test_uart () =
  let u = Uart.create () in
  let d = Uart.device u ~base:0L in
  String.iter
    (fun ch -> d.Device.store 0L 1 (Int64.of_int (Char.code ch)))
    "hello";
  Helpers.check_str "output" "hello" (Uart.output u);
  Helpers.check_i64 "LSR ready" 0x60L (d.Device.load 5L 1);
  Uart.clear u;
  Helpers.check_str "cleared" "" (Uart.output u)

let test_blockdev_read_write () =
  let ram = Memory.create ~base:0x80000000L ~size:65536 in
  let bd = Blockdev.create ~ram ~capacity_sectors:16 ~latency_ticks:10L ~irq:1 in
  let d = Blockdev.device bd ~base:0L in
  let fired = ref 0 in
  (* preload sector 3 *)
  Blockdev.write_sector bd 3 (Bytes.make 512 'Q');
  (* command: read sector 3 into RAM at 0x80001000 *)
  d.Device.store 0x00L 8 3L;
  d.Device.store 0x08L 8 0x80001000L;
  d.Device.store 0x10L 8 512L;
  d.Device.store 0x18L 8 1L;
  Alcotest.(check bool) "busy" true (Blockdev.busy bd);
  (* not yet due *)
  Blockdev.poll bd ~now:0L (fun _ -> incr fired);
  Alcotest.(check int) "no irq yet" 0 !fired;
  Blockdev.poll bd ~now:100L (fun _ -> incr fired);
  Alcotest.(check int) "completion irq" 1 !fired;
  Helpers.check_i64 "status done" 2L (d.Device.load 0x20L 8);
  Helpers.check_i64 "data arrived" 0x5151515151515151L
    (Memory.load ram 0x80001000L 8);
  (* write path: RAM -> disk *)
  Memory.store ram 0x80002000L 8 0x4242424242424242L;
  d.Device.store 0x20L 8 0L (* ack *);
  d.Device.store 0x00L 8 5L;
  d.Device.store 0x08L 8 0x80002000L;
  d.Device.store 0x10L 8 8L;
  d.Device.store 0x18L 8 2L;
  Blockdev.poll bd ~now:200L (fun _ -> ());
  Blockdev.poll bd ~now:400L (fun _ -> ());
  Alcotest.(check char) "disk updated" 'B'
    (Bytes.get (Blockdev.read_sector bd 5) 0)

let test_nic_rx_tx () =
  let ram = Memory.create ~base:0x80000000L ~size:65536 in
  let nic = Nic.create ~ram ~irq:2 in
  let d = Nic.device nic ~base:0L in
  Alcotest.(check bool) "idle line low" false (Nic.irq_line nic);
  Nic.inject_rx nic (Bytes.of_string "ping");
  Alcotest.(check bool) "line high" true (Nic.irq_line nic);
  Helpers.check_i64 "head length" 4L (d.Device.load 0x00L 8);
  d.Device.store 0x08L 8 0x80003000L;
  d.Device.store 0x10L 8 1L (* consume *);
  Alcotest.(check int) "queue drained" 0 (Nic.rx_pending nic);
  Helpers.check_str "payload DMA'd" "ping"
    (Bytes.to_string (Memory.load_bytes ram 0x80003000L 4));
  (* transmit *)
  Memory.store_bytes ram 0x80004000L (Bytes.of_string "pong");
  d.Device.store 0x18L 8 0x80004000L;
  d.Device.store 0x20L 8 4L;
  d.Device.store 0x28L 8 1L;
  (match Nic.take_tx nic with
  | Some b -> Helpers.check_str "tx" "pong" (Bytes.to_string b)
  | None -> Alcotest.fail "no tx packet")

let test_device_window_predicates () =
  let d =
    { Device.name = "x"; base = 0x1000L; size = 0x100L;
      load = (fun _ _ -> 0L); store = (fun _ _ _ -> ()) }
  in
  Alcotest.(check bool) "contains inside" true (Device.contains d 0x1080L 8);
  Alcotest.(check bool) "contains at end" false (Device.contains d 0x10FCL 8);
  Alcotest.(check bool) "overlaps straddling" true (Device.overlaps d 0xFFCL 8);
  Alcotest.(check bool) "disjoint" false (Device.overlaps d 0x2000L 8)

let () =
  Alcotest.run "devices"
    [
      ( "devices",
        [
          Alcotest.test_case "clint registers" `Quick test_clint_registers;
          Alcotest.test_case "plic claim/priority" `Quick
            test_plic_priorities_and_claim;
          Alcotest.test_case "plic threshold" `Quick test_plic_threshold;
          Alcotest.test_case "plic S context" `Quick test_plic_s_context;
          Alcotest.test_case "uart" `Quick test_uart;
          Alcotest.test_case "blockdev" `Quick test_blockdev_read_write;
          Alcotest.test_case "nic" `Quick test_nic_rx_tx;
          Alcotest.test_case "device windows" `Quick
            test_device_window_predicates;
        ] );
    ]
