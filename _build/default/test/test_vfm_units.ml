(* White-box unit tests for the VFM's subsystems: the emulator, the
   virtual CLINT, PMP multiplexing, world switches, offload handlers
   and configuration derivation. *)

module Bits = Mir_util.Bits
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module C = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Priv = Mir_rv.Priv
module Pmp = Mir_rv.Pmp
module Instr = Mir_rv.Instr
module Clint = Mir_rv.Clint
module Config = Miralis.Config
module Vhart = Miralis.Vhart
module Vclint = Miralis.Vclint
module Vpmp = Miralis.Vpmp
module World = Miralis.World
module Emulator = Miralis.Emulator

let host = Machine.default_config
let config () = Config.make ~machine:host ()

let emu_ctx regs =
  {
    Emulator.read_gpr = (fun i -> regs.(i));
    write_gpr = (fun i v -> if i <> 0 then regs.(i) <- v);
    pc = 0x80000000L;
    cycles = 1234L;
    instret = 99L;
    phys_custom_read = (fun _ -> 0xC0L);
    phys_custom_write = (fun _ _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let test_config_pmp_budget () =
  let cfg = config () in
  (* 8 physical = 4 fixed + 1 policy + 3 virtual *)
  Alcotest.(check int) "vpmp count" 3 (Config.vpmp_count cfg);
  Alcotest.(check int) "reserved" 5 (Config.reserved_pmp_slots cfg);
  (* not enough entries is rejected *)
  Alcotest.(check bool) "too few PMPs rejected" true
    (match
       Config.make
         ~machine:
           {
             host with
             Machine.csr_config =
               { host.Machine.csr_config with Csr_spec.pmp_count = 4 };
           }
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* miralis memory sits at the top of RAM *)
  Helpers.check_i64 "miralis base" 0x80F00000L cfg.Config.miralis_base

let test_config_virtual_hardwires_delegation () =
  let cfg = config () in
  Alcotest.(check bool) "vcsr hardwires mideleg" true
    cfg.Config.vcsr_config.Csr_spec.force_s_interrupt_delegation

(* ------------------------------------------------------------------ *)
(* Emulator corner cases                                               *)
(* ------------------------------------------------------------------ *)

let fresh_vhart ?(cfg = config ()) () = Vhart.create cfg ~id:0

let test_emulator_csr_roundtrip () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let regs = Array.make 32 0L in
  regs.(5) <- 0xABCDL;
  let instr =
    Instr.Csr { op = Instr.Csrrw; rd = 6; src = Instr.Reg 5; csr = C.mscratch }
  in
  let out = Emulator.emulate cfg vh (emu_ctx regs) ~bits:0 instr in
  Alcotest.(check bool) "next" true (out.Emulator.action = Emulator.Next);
  Helpers.check_i64 "old value read" 0L regs.(6);
  Helpers.check_i64 "stored" 0xABCDL (Csr_file.read_raw vh.Vhart.csr C.mscratch)

let test_emulator_read_only_csr_traps () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let regs = Array.make 32 1L in
  let instr =
    Instr.Csr { op = Instr.Csrrw; rd = 0; src = Instr.Reg 5; csr = C.mvendorid }
  in
  let out = Emulator.emulate cfg vh (emu_ctx regs) ~bits:0xDEAD instr in
  Alcotest.(check bool) "illegal vtrap" true
    (out.Emulator.action
    = Emulator.Vtrap (Mir_rv.Cause.Illegal_instr, 0xDEADL))

let test_emulator_counters () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let regs = Array.make 32 0L in
  let read csr rd =
    ignore
      (Emulator.emulate cfg vh (emu_ctx regs) ~bits:0
         (Instr.Csr { op = Instr.Csrrs; rd; src = Instr.Reg 0; csr }))
  in
  read C.mcycle 5;
  read C.minstret 6;
  read C.cycle 7;
  Helpers.check_i64 "mcycle" 1234L regs.(5);
  Helpers.check_i64 "minstret" 99L regs.(6);
  Helpers.check_i64 "cycle" 1234L regs.(7)

let test_emulator_time_csr_traps () =
  (* the virtual hart has no time CSR (like the boards): the firmware's
     own rdtime must trap to its own handler *)
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let regs = Array.make 32 0L in
  let out =
    Emulator.emulate cfg vh (emu_ctx regs) ~bits:0xC0102573
      (Instr.Csr { op = Instr.Csrrs; rd = 10; src = Instr.Reg 0; csr = C.time })
  in
  Alcotest.(check bool) "vtrap illegal" true
    (match out.Emulator.action with
    | Emulator.Vtrap (Mir_rv.Cause.Illegal_instr, _) -> true
    | _ -> false)

let test_emulator_custom_csr_passthrough () =
  let cfg =
    Config.make ~allowed_custom_csrs:[ C.custom0 ]
      ~machine:
        {
          host with
          Machine.csr_config =
            { host.Machine.csr_config with Csr_spec.custom_csrs = [ C.custom0 ] };
        }
      ()
  in
  let vh = fresh_vhart ~cfg () in
  let regs = Array.make 32 0L in
  let written = ref None in
  let ctx =
    { (emu_ctx regs) with
      Emulator.phys_custom_write = (fun a v -> written := Some (a, v)) }
  in
  regs.(5) <- 0x55L;
  let out =
    Emulator.emulate cfg vh ctx ~bits:0
      (Instr.Csr { op = Instr.Csrrw; rd = 6; src = Instr.Reg 5; csr = C.custom0 })
  in
  Alcotest.(check bool) "next" true (out.Emulator.action = Emulator.Next);
  Helpers.check_i64 "read from hardware" 0xC0L regs.(6);
  Alcotest.(check bool) "write reached hardware" true
    (!written = Some (C.custom0, 0x55L))

let test_emulator_mret_stays_when_mpp_m () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let v = vh.Vhart.csr in
  let regs = Array.make 32 0L in
  let ms = Csr_spec.Mstatus.set_mpp 0L Priv.M in
  let ms = Bits.set ms Csr_spec.Mstatus.mpie in
  Csr_file.write_raw v C.mstatus ms;
  Csr_file.write_raw v C.mepc 0x80001000L;
  let out = Emulator.emulate cfg vh (emu_ctx regs) ~bits:0 Instr.Mret in
  Alcotest.(check bool) "jump, no world switch" true
    (out.Emulator.action = Emulator.Jump 0x80001000L);
  let ms' = Csr_file.read_raw v C.mstatus in
  Alcotest.(check bool) "MIE restored from MPIE" true
    (Bits.test ms' Csr_spec.Mstatus.mie);
  Alcotest.(check bool) "MPIE set" true (Bits.test ms' Csr_spec.Mstatus.mpie);
  Helpers.check_i64 "MPP cleared to U" 0L
    (Bits.extract ms' ~lo:11 ~hi:12)

let test_emulator_mret_exits_when_mpp_s () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let v = vh.Vhart.csr in
  let regs = Array.make 32 0L in
  Csr_file.write_raw v C.mstatus (Csr_spec.Mstatus.set_mpp 0L Priv.S);
  Csr_file.write_raw v C.mepc 0x80402000L;
  let out = Emulator.emulate cfg vh (emu_ctx regs) ~bits:0 Instr.Mret in
  Alcotest.(check bool) "exit to OS at S" true
    (out.Emulator.action
    = Emulator.Exit_to_os { pc = 0x80402000L; priv = Priv.S })

let test_emulator_mprv_tracking () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let regs = Array.make 32 0L in
  (* set MPP=S then MPRV: the emulation flag engages and the PMP is
     marked dirty *)
  regs.(5) <- Csr_spec.Mstatus.set_mpp 0L Priv.S;
  ignore
    (Emulator.emulate cfg vh (emu_ctx regs) ~bits:0
       (Instr.Csr { op = Instr.Csrrw; rd = 0; src = Instr.Reg 5; csr = C.mstatus }));
  Alcotest.(check bool) "not yet" false vh.Vhart.mprv_active;
  regs.(6) <- Bits.set 0L Csr_spec.Mstatus.mprv;
  let out =
    Emulator.emulate cfg vh (emu_ctx regs) ~bits:0
      (Instr.Csr { op = Instr.Csrrs; rd = 0; src = Instr.Reg 6; csr = C.mstatus })
  in
  Alcotest.(check bool) "mprv active" true vh.Vhart.mprv_active;
  Alcotest.(check bool) "pmp dirty" true out.Emulator.pmp_dirty;
  (* mret to S clears MPRV *)
  Csr_file.write_raw vh.Vhart.csr C.mepc 0x80400000L;
  let out2 = Emulator.emulate cfg vh (emu_ctx regs) ~bits:0 Instr.Mret in
  Alcotest.(check bool) "mprv off after mret" false vh.Vhart.mprv_active;
  Alcotest.(check bool) "pmp dirty again" true out2.Emulator.pmp_dirty

let test_emulator_unsupported () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let regs = Array.make 32 0L in
  let out =
    Emulator.emulate cfg vh (emu_ctx regs) ~bits:0
      (Instr.Op (Instr.Add, 1, 2, 3))
  in
  Alcotest.(check bool) "unsupported" true
    (out.Emulator.action = Emulator.Unsupported)

(* ------------------------------------------------------------------ *)
(* Virtual CLINT                                                       *)
(* ------------------------------------------------------------------ *)

let test_vclint_timer_multiplexing () =
  let vc = Vclint.create ~nharts:2 in
  let clint = Clint.create ~nharts:2 in
  Clint.set_mtime clint 1000L;
  (* firmware arms its timer at 2000, the offload path at 1500: the
     physical comparator takes the earlier *)
  Vclint.set_vmtimecmp vc 0 2000L;
  Vclint.set_offload_deadline vc 0 1500L;
  Vclint.program_physical vc clint 0;
  Helpers.check_i64 "physical = min" 1500L (Clint.mtimecmp clint 0);
  (* virtual MTIP line *)
  Alcotest.(check bool) "not due" false (Vclint.vmtip vc clint 0);
  Clint.set_mtime clint 2000L;
  Alcotest.(check bool) "due" true (Vclint.vmtip vc clint 0);
  (* disarming stops the physical comparator from re-firing *)
  Vclint.disarm_virtual vc 0;
  Vclint.set_offload_deadline vc 0 (-1L);
  Vclint.program_physical vc clint 0;
  Helpers.check_i64 "disarmed" (-1L) (Clint.mtimecmp clint 0);
  (* but the virtual line stays pending *)
  Alcotest.(check bool) "virtual MTIP latched" true (Vclint.vmtip vc clint 0)

let test_vclint_mmio_emulation () =
  let vc = Vclint.create ~nharts:2 in
  let clint = Clint.create ~nharts:2 in
  Clint.set_mtime clint 7777L;
  (* mtime reads pass through to the physical clock *)
  Alcotest.(check bool) "mtime read" true
    (Vclint.emulate_access vc clint ~offset:Clint.mtime_offset ~size:8
       ~write:None
    = Some 7777L);
  (* msip hits virtual state, not the physical device *)
  ignore
    (Vclint.emulate_access vc clint ~offset:(Clint.msip_offset 1) ~size:4
       ~write:(Some 1L));
  Alcotest.(check bool) "vmsip set" true (Vclint.vmsip vc 1);
  Alcotest.(check bool) "physical msip untouched" false (Clint.msip clint 1);
  (* mtimecmp 32-bit halves *)
  ignore
    (Vclint.emulate_access vc clint ~offset:(Clint.mtimecmp_offset 0) ~size:4
       ~write:(Some 0x11111111L));
  ignore
    (Vclint.emulate_access vc clint
       ~offset:(Int64.add (Clint.mtimecmp_offset 0) 4L)
       ~size:4 ~write:(Some 0x22222222L));
  Helpers.check_i64 "halves merged" 0x2222222211111111L (Vclint.vmtimecmp vc 0);
  (* out-of-window offsets are rejected *)
  Alcotest.(check bool) "bogus offset" true
    (Vclint.emulate_access vc clint ~offset:0x9000L ~size:8 ~write:None = None)

(* ------------------------------------------------------------------ *)
(* Virtual PMP layout                                                  *)
(* ------------------------------------------------------------------ *)

let test_vpmp_layout () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  vh.Vhart.world <- Vhart.Firmware;
  let entries = Vpmp.build cfg vh ~policy:[] in
  Alcotest.(check int) "fills the physical budget" 8 (Array.length entries);
  (* entry 0 protects Miralis: a deny entry covering miralis_base *)
  (match Pmp.range ~prev_addr:0L entries.(0) with
  | Some (lo, _) -> Helpers.check_i64 "miralis first" cfg.Config.miralis_base lo
  | None -> Alcotest.fail "entry 0 inactive");
  Alcotest.(check bool) "entry 0 denies" true
    (not entries.(0).Pmp.r && not entries.(0).Pmp.w);
  (* the zero-anchor precedes the vPMP block with address 0 *)
  let anchor = entries.(2 + cfg.Config.policy_pmp_slots) in
  Helpers.check_i64 "anchor addr" 0L anchor.Pmp.addr;
  Alcotest.(check bool) "anchor off" true (anchor.Pmp.a = Pmp.Off);
  (* firmware world: the catch-all grants RWX over everything *)
  let ca = entries.(7) in
  Alcotest.(check bool) "catch-all rwx" true
    (ca.Pmp.r && ca.Pmp.w && ca.Pmp.x && ca.Pmp.a = Pmp.Napot);
  (* OS world: the catch-all is off *)
  vh.Vhart.world <- Vhart.Os;
  let entries_os = Vpmp.build cfg vh ~policy:[] in
  Alcotest.(check bool) "catch-all off for OS" true
    (entries_os.(7).Pmp.a = Pmp.Off)

let test_vpmp_mprv_execute_only () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  vh.Vhart.world <- Vhart.Firmware;
  vh.Vhart.mprv_active <- true;
  (* give the firmware one unlocked RWX ventry *)
  Csr_file.write vh.Vhart.csr (C.pmpaddr 0) 0x20100000L;
  Csr_file.write vh.Vhart.csr (C.pmpcfg 0) 0x1FL;
  let entries = Vpmp.build cfg vh ~policy:[] in
  let ca = entries.(7) in
  Alcotest.(check bool) "catch-all X-only" true
    (ca.Pmp.x && (not ca.Pmp.r) && not ca.Pmp.w);
  (* the promoted ventry is also X-only during MPRV emulation *)
  let ve = entries.(2 + cfg.Config.policy_pmp_slots + 1) in
  Alcotest.(check bool) "ventry X-only" true
    (ve.Pmp.x && (not ve.Pmp.r) && not ve.Pmp.w)

let test_vpmp_locked_entries_verbatim () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  vh.Vhart.world <- Vhart.Firmware;
  Csr_file.write vh.Vhart.csr (C.pmpaddr 0) 0x20100000L;
  Csr_file.write vh.Vhart.csr (C.pmpcfg 0) 0x99L (* locked NAPOT R *);
  let entries = Vpmp.build cfg vh ~policy:[] in
  let ve = entries.(2 + cfg.Config.policy_pmp_slots + 1) in
  Alcotest.(check bool) "locked entry keeps perms" true
    (ve.Pmp.l && ve.Pmp.r && (not ve.Pmp.w) && not ve.Pmp.x)

(* ------------------------------------------------------------------ *)
(* World switches                                                      *)
(* ------------------------------------------------------------------ *)

let test_world_switch_roundtrip () =
  let cfg = config () in
  let vh = fresh_vhart ~cfg () in
  let hart = Hart.create host.Machine.csr_config ~id:0 in
  let p = hart.Hart.csr and v = vh.Vhart.csr in
  (* OS state in the physical registers *)
  Csr_file.write_raw p C.stvec 0x80405000L;
  Csr_file.write_raw p C.satp 0x8000000000080400L;
  Csr_file.write_raw p C.sscratch 0x1234L;
  Csr_file.set_mip_bits p Csr_spec.Irq.ssip true;
  vh.Vhart.world <- Vhart.Firmware;
  World.to_fw cfg vh hart ~policy:[];
  (* saved into the virtual copies *)
  Helpers.check_i64 "stvec saved" 0x80405000L (Csr_file.read_raw v C.stvec);
  Helpers.check_i64 "satp saved" 0x8000000000080400L
    (Csr_file.read_raw v C.satp);
  Alcotest.(check bool) "SSIP saved" true
    (Bits.test (Csr_file.read_raw v C.mip) 1);
  (* physical well-defined values *)
  Helpers.check_i64 "phys satp bare" 0L (Csr_file.read_raw p C.satp);
  Helpers.check_i64 "phys medeleg 0" 0L (Csr_file.read_raw p C.medeleg);
  Helpers.check_i64 "phys mie = miralis" World.miralis_mie
    (Csr_file.read_raw p C.mie);
  Alcotest.(check bool) "phys SSIP cleared" false
    (Bits.test (Csr_file.read_raw p C.mip) 1);
  (* firmware updates its virtual S state, then we switch back *)
  Csr_file.write_raw v C.stvec 0x80406000L;
  Csr_file.write_raw v C.medeleg 0xB109L;
  vh.Vhart.world <- Vhart.Os;
  World.to_os cfg vh hart ~policy:[];
  Helpers.check_i64 "stvec installed" 0x80406000L (Csr_file.read_raw p C.stvec);
  Helpers.check_i64 "satp restored" 0x8000000000080400L
    (Csr_file.read_raw p C.satp);
  Helpers.check_i64 "medeleg live" 0xB109L (Csr_file.read_raw p C.medeleg);
  Alcotest.(check bool) "SSIP restored" true
    (Bits.test (Csr_file.read_raw p C.mip) 1);
  Helpers.check_i64 "sscratch survived the round trip" 0x1234L
    (Csr_file.read_raw p C.sscratch)

let test_world_swap_set_respects_extensions () =
  Alcotest.(check bool) "base set has satp" true
    (List.mem C.satp (World.swap_csrs Csr_spec.default_config));
  Alcotest.(check bool) "no stimecmp without sstc" false
    (List.mem C.stimecmp (World.swap_csrs Csr_spec.default_config));
  let cfg =
    { Csr_spec.default_config with Csr_spec.has_sstc = true; has_h = true }
  in
  Alcotest.(check bool) "stimecmp with sstc" true
    (List.mem C.stimecmp (World.swap_csrs cfg));
  Alcotest.(check bool) "hgatp with H" true
    (List.mem C.hgatp (World.swap_csrs cfg))

(* ------------------------------------------------------------------ *)
(* Offload handlers                                                    *)
(* ------------------------------------------------------------------ *)

let offload_setup () =
  let m = Machine.create host in
  let hart = m.Machine.harts.(0) in
  let cfg = config () in
  let vclint = Vclint.create ~nharts:1 in
  let stats = Miralis.Vfm_stats.create () in
  (m, hart, cfg, vclint, stats)

let test_offload_set_timer () =
  let m, hart, cfg, vclint, stats = offload_setup () in
  Csr_file.write_raw hart.Hart.csr C.mepc 0x80400000L;
  Csr_file.set_mip_bits hart.Hart.csr Csr_spec.Irq.stip true;
  Hart.set hart 17 Mir_sbi.Sbi.ext_time;
  Hart.set hart 16 0L;
  Hart.set hart 10 5000L;
  (match Miralis.Offload.try_ecall cfg m vclint stats hart with
  | Miralis.Offload.Resume_at pc -> Helpers.check_i64 "skips ecall" 0x80400004L pc
  | Miralis.Offload.Not_handled -> Alcotest.fail "not handled");
  Helpers.check_i64 "deadline armed" 5000L (Vclint.offload_deadline vclint 0);
  Helpers.check_i64 "physical comparator" 5000L (Clint.mtimecmp m.Machine.clint 0);
  Alcotest.(check bool) "STIP cleared" false
    (Bits.test (Csr_file.read_raw hart.Hart.csr C.mip) 5);
  Alcotest.(check int) "counted" 1 stats.Miralis.Vfm_stats.offload_set_timer

let test_offload_rejects_unknown_ext () =
  let m, hart, cfg, vclint, stats = offload_setup () in
  Hart.set hart 17 0x999L;
  Alcotest.(check bool) "unknown ext deferred" true
    (Miralis.Offload.try_ecall cfg m vclint stats hart
    = Miralis.Offload.Not_handled)

let test_offload_disabled_defers () =
  let m, hart, _, vclint, stats = offload_setup () in
  let cfg = Config.make ~offload:false ~machine:host () in
  Hart.set hart 17 Mir_sbi.Sbi.ext_time;
  Alcotest.(check bool) "offload off" true
    (Miralis.Offload.try_ecall cfg m vclint stats hart
    = Miralis.Offload.Not_handled)

let test_offload_time_read () =
  let m, hart, cfg, _, stats = offload_setup () in
  Clint.set_mtime m.Machine.clint 0x1717L;
  Csr_file.write_raw hart.Hart.csr C.mepc 0x80400100L;
  (* csrrs a0, time, x0 *)
  let bits = Int64.of_int (Mir_rv.Encode.encode
      (Instr.Csr { op = Instr.Csrrs; rd = 10; src = Instr.Reg 0; csr = C.time }))
  in
  (match Miralis.Offload.try_illegal cfg m stats hart ~bits with
  | Miralis.Offload.Resume_at pc -> Helpers.check_i64 "pc+4" 0x80400104L pc
  | Miralis.Offload.Not_handled -> Alcotest.fail "not handled");
  Helpers.check_i64 "rd = mtime" 0x1717L (Hart.get hart 10);
  (* a write form must NOT be offloaded (time is read-only) *)
  let bits_w = Int64.of_int (Mir_rv.Encode.encode
      (Instr.Csr { op = Instr.Csrrw; rd = 10; src = Instr.Reg 5; csr = C.time }))
  in
  Alcotest.(check bool) "write form deferred" true
    (Miralis.Offload.try_illegal cfg m stats hart ~bits:bits_w
    = Miralis.Offload.Not_handled)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vfm-units"
    [
      ( "config",
        [
          Alcotest.test_case "pmp budget" `Quick test_config_pmp_budget;
          Alcotest.test_case "hardwired delegation" `Quick
            test_config_virtual_hardwires_delegation;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "csr roundtrip" `Quick test_emulator_csr_roundtrip;
          Alcotest.test_case "read-only traps" `Quick
            test_emulator_read_only_csr_traps;
          Alcotest.test_case "counters" `Quick test_emulator_counters;
          Alcotest.test_case "time traps" `Quick test_emulator_time_csr_traps;
          Alcotest.test_case "custom csr passthrough" `Quick
            test_emulator_custom_csr_passthrough;
          Alcotest.test_case "mret MPP=M" `Quick
            test_emulator_mret_stays_when_mpp_m;
          Alcotest.test_case "mret MPP=S" `Quick
            test_emulator_mret_exits_when_mpp_s;
          Alcotest.test_case "MPRV tracking" `Quick test_emulator_mprv_tracking;
          Alcotest.test_case "unsupported" `Quick test_emulator_unsupported;
        ] );
      ( "vclint",
        [
          Alcotest.test_case "timer multiplexing" `Quick
            test_vclint_timer_multiplexing;
          Alcotest.test_case "mmio emulation" `Quick test_vclint_mmio_emulation;
        ] );
      ( "vpmp",
        [
          Alcotest.test_case "layout" `Quick test_vpmp_layout;
          Alcotest.test_case "MPRV execute-only" `Quick
            test_vpmp_mprv_execute_only;
          Alcotest.test_case "locked verbatim" `Quick
            test_vpmp_locked_entries_verbatim;
        ] );
      ( "world",
        [
          Alcotest.test_case "roundtrip" `Quick test_world_switch_roundtrip;
          Alcotest.test_case "swap set" `Quick
            test_world_swap_set_respects_extensions;
        ] );
      ( "offload",
        [
          Alcotest.test_case "set_timer" `Quick test_offload_set_timer;
          Alcotest.test_case "unknown ext" `Quick
            test_offload_rejects_unknown_ext;
          Alcotest.test_case "disabled" `Quick test_offload_disabled_defers;
          Alcotest.test_case "time read" `Quick test_offload_time_read;
        ] );
    ]
