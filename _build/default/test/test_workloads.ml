(* Workload-layer tests: the models produce runnable scripts, the
   engine's measurements are sane, and the boot trace reproduces the
   paper's headline properties (five causes dominate; offload removes
   almost all world switches). *)

module Setup = Mir_harness.Setup
module Engine = Mir_workloads.Engine
module Models = Mir_workloads.Models
module Boot_trace = Mir_workloads.Boot_trace
module Platform = Mir_platform.Platform

let vf2 = Platform.visionfive2

let run_spec mode (spec : Models.spec) =
  Engine.run vf2 mode ~ops:spec.Models.ops spec.Models.scripts

let test_every_model_runs () =
  List.iter
    (fun (spec : Models.spec) ->
      let r = run_spec Setup.Virtualized spec in
      Alcotest.(check bool)
        (spec.Models.name ^ " progresses")
        true
        (r.Engine.cycles > 0L && r.Engine.throughput > 0.))
    [
      Models.coremark ~kernel:"core";
      Models.iozone ~write:false ~record_kib:128 ~records:2;
      Models.iozone ~write:true ~record_kib:128 ~records:2;
      Models.redis ~ops:20;
      Models.memcached ~ops:10;
      Models.mysql ~ops:8;
      Models.gcc ~ops:1;
      Models.rdtime_loop ~n:50;
      Models.ipi_loop ~n:10;
      Models.memcached_latency ~requests:16;
    ]

let test_coremark_kernels_all_defined () =
  Alcotest.(check int) "nine kernels" 9 (List.length Models.coremark_kernels);
  List.iter
    (fun k -> ignore (Models.coremark ~kernel:k))
    Models.coremark_kernels

let test_trap_rates_ordered () =
  (* the paper's ordering: network-heavy workloads trap far more than
     compute-heavy ones *)
  let redis = run_spec Setup.Native (Models.redis ~ops:60) in
  let gcc = run_spec Setup.Native (Models.gcc ~ops:2) in
  Alcotest.(check bool)
    (Printf.sprintf "redis %.0f/s > 5x gcc %.0f/s" redis.Engine.traps_per_sec
       gcc.Engine.traps_per_sec)
    true
    (redis.Engine.traps_per_sec > 5. *. gcc.Engine.traps_per_sec)

let test_offload_removes_world_switches () =
  let spec = Models.redis ~ops:60 in
  let off = run_spec Setup.Virtualized spec in
  let noff = run_spec Setup.Virtualized_no_offload spec in
  Alcotest.(check bool) "offload: almost none" true
    (off.Engine.world_switches <= 2);
  Alcotest.(check bool) "no-offload: hundreds" true
    (noff.Engine.world_switches > 100);
  Alcotest.(check bool) "offload hits instead" true
    (off.Engine.offload_hits > 100)

let test_relative_is_ratio () =
  let base =
    { (run_spec Setup.Native (Models.gcc ~ops:1)) with Engine.throughput = 100. }
  in
  let faster = { base with Engine.throughput = 110. } in
  Alcotest.(check (float 1e-9)) "ratio" 1.1 (Engine.relative ~baseline:base faster)

let test_boot_trace_properties () =
  let t = Boot_trace.run vf2 Setup.Native ~window_ms:1.0 in
  Alcotest.(check bool) "several windows" true (List.length t.Boot_trace.windows > 5);
  let totals =
    List.map
      (fun c ->
        ( c,
          List.fold_left
            (fun acc (w : Boot_trace.window) ->
              acc + List.assoc c w.Boot_trace.counts)
            0 t.Boot_trace.windows ))
      Boot_trace.causes
  in
  let all = List.fold_left (fun a (_, n) -> a + n) 0 totals in
  let other = List.assoc Boot_trace.Other totals in
  Alcotest.(check bool) "traps observed" true (all > 100);
  Alcotest.(check bool)
    (Printf.sprintf "five causes dominate (%d other of %d)" other all)
    true
    (float_of_int other < 0.05 *. float_of_int all);
  (* every one of the five causes appears during boot *)
  List.iter
    (fun c ->
      if c <> Boot_trace.Other then
        Alcotest.(check bool) (Boot_trace.cause_name c ^ " present") true
          (List.assoc c totals > 0))
    Boot_trace.causes

let test_boot_offload_ablation () =
  let t_off = Boot_trace.run vf2 Setup.Virtualized ~window_ms:1.0 in
  let t_no = Boot_trace.run vf2 Setup.Virtualized_no_offload ~window_ms:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "offload %d << no-offload %d world switches"
       t_off.Boot_trace.world_switches t_no.Boot_trace.world_switches)
    true
    (t_off.Boot_trace.world_switches * 20 < t_no.Boot_trace.world_switches);
  Alcotest.(check bool) "no-offload boots slower" true
    (t_no.Boot_trace.boot_seconds > t_off.Boot_trace.boot_seconds)

let test_rv8_staging () =
  let m = Mir_rv.Machine.create vf2.Platform.machine in
  Models.stage_rv8 m ~index:0;
  (* the descriptor points at the staged image *)
  let base =
    Option.get (Mir_rv.Machine.phys_load m Mir_kernel.Script.desc_base 8)
  in
  Helpers.check_i64 "descriptor base" Models.rv8_enclave_base base;
  Alcotest.(check bool) "image staged" true
    (Option.get (Mir_rv.Machine.phys_load m Models.rv8_enclave_base 4) <> 0L)

let () =
  Alcotest.run "workloads"
    [
      ( "workloads",
        [
          Alcotest.test_case "every model runs" `Slow test_every_model_runs;
          Alcotest.test_case "coremark kernels" `Quick
            test_coremark_kernels_all_defined;
          Alcotest.test_case "trap rates ordered" `Quick test_trap_rates_ordered;
          Alcotest.test_case "offload vs world switches" `Quick
            test_offload_removes_world_switches;
          Alcotest.test_case "relative" `Quick test_relative_is_ratio;
          Alcotest.test_case "boot trace" `Quick test_boot_trace_properties;
          Alcotest.test_case "boot offload ablation" `Quick
            test_boot_offload_ablation;
          Alcotest.test_case "rv8 staging" `Quick test_rv8_staging;
        ] );
    ]
