(* Decoder/encoder tests: structured unit cases plus the round-trip
   property over randomly generated instruction ASTs and a fuzz sweep
   asserting the decoder is total (never raises). *)

module Instr = Mir_rv.Instr
module Decode = Mir_rv.Decode
module Encode = Mir_rv.Encode

let check_roundtrip name i =
  match Decode.decode (Encode.encode i) with
  | Some i' ->
      Alcotest.(check string) name (Instr.to_string i) (Instr.to_string i')
  | None -> Alcotest.failf "%s: decode returned None" name

let test_known_encodings () =
  (* Cross-checked against binutils output. *)
  Alcotest.(check int) "nop = addi x0,x0,0" 0x00000013
    (Encode.encode (Instr.Op_imm (Instr.Addi, 0, 0, 0L)));
  Alcotest.(check int) "ecall" 0x00000073 (Encode.encode Instr.Ecall);
  Alcotest.(check int) "ebreak" 0x00100073 (Encode.encode Instr.Ebreak);
  Alcotest.(check int) "mret" 0x30200073 (Encode.encode Instr.Mret);
  Alcotest.(check int) "sret" 0x10200073 (Encode.encode Instr.Sret);
  Alcotest.(check int) "wfi" 0x10500073 (Encode.encode Instr.Wfi);
  (* csrrw x0, mscratch, x0 = 0x34001073 *)
  Alcotest.(check int) "csrw mscratch,x0" 0x34001073
    (Encode.encode
       (Instr.Csr { op = Instr.Csrrw; rd = 0; src = Instr.Reg 0; csr = 0x340 }));
  (* addi a0, a0, 1 *)
  Alcotest.(check int) "addi a0,a0,1" 0x00150513
    (Encode.encode (Instr.Op_imm (Instr.Addi, 10, 10, 1L)));
  (* ld a1, 8(a0) = 0x00853583 *)
  Alcotest.(check int) "ld a1,8(a0)" 0x00853583
    (Encode.encode
       (Instr.Load { width = Instr.D; unsigned = false; rd = 11; rs1 = 10; imm = 8L }))

let test_branch_offsets () =
  check_roundtrip "beq fwd" (Instr.Branch (Instr.Beq, 1, 2, 64L));
  check_roundtrip "bne back" (Instr.Branch (Instr.Bne, 3, 4, -64L));
  check_roundtrip "bltu max" (Instr.Branch (Instr.Bltu, 5, 6, 4094L));
  check_roundtrip "bgeu min" (Instr.Branch (Instr.Bgeu, 7, 8, -4096L))

let test_jump_offsets () =
  check_roundtrip "jal fwd" (Instr.Jal (1, 0x1000L));
  check_roundtrip "jal back" (Instr.Jal (0, -0x1000L));
  check_roundtrip "jal max" (Instr.Jal (5, 1048574L));
  check_roundtrip "jal min" (Instr.Jal (5, -1048576L))

let test_u_type () =
  check_roundtrip "lui pos" (Instr.Lui (3, 0x12345000L));
  check_roundtrip "lui neg" (Instr.Lui (3, Mir_util.Bits.sext 0x80000000L ~width:32));
  check_roundtrip "auipc" (Instr.Auipc (7, 0x7FFFF000L))

let test_csr_forms () =
  check_roundtrip "csrrs reg"
    (Instr.Csr { op = Instr.Csrrs; rd = 5; src = Instr.Reg 6; csr = 0x300 });
  check_roundtrip "csrrwi"
    (Instr.Csr { op = Instr.Csrrw; rd = 5; src = Instr.Imm 31; csr = 0xFFF });
  check_roundtrip "csrrci"
    (Instr.Csr { op = Instr.Csrrc; rd = 0; src = Instr.Imm 0; csr = 0x000 })

let test_shifts () =
  check_roundtrip "slli 63" (Instr.Op_imm (Instr.Slli, 1, 2, 63L));
  check_roundtrip "srai 63" (Instr.Op_imm (Instr.Srai, 1, 2, 63L));
  check_roundtrip "srliw 31" (Instr.Op_imm32 (Instr.Srliw, 1, 2, 31L));
  check_roundtrip "sraiw 0" (Instr.Op_imm32 (Instr.Sraiw, 1, 2, 0L))

let test_sfence () =
  check_roundtrip "sfence.vma x0,x0" (Instr.Sfence_vma (0, 0));
  check_roundtrip "sfence.vma a0,a1" (Instr.Sfence_vma (10, 11))

let test_illegal_encodings () =
  let is_none name w =
    Alcotest.(check bool) name true (Decode.decode w = None)
  in
  is_none "all zero" 0x00000000;
  is_none "all ones" 0xFFFFFFFF;
  is_none "bad opcode" 0x0000007B;
  is_none "bad funct3 branch" ((2 lsl 12) lor 0x63);
  is_none "bad funct7 add" ((0x40 lsl 25) lor 0x33)

(* Random instruction generator for the round-trip property. *)
let gen_instr =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let imm12 = map Int64.of_int (int_range (-2048) 2047) in
  let imm13 = map (fun i -> Int64.of_int (i * 2)) (int_range (-2048) 2047) in
  let imm21 = map (fun i -> Int64.of_int (i * 2)) (int_range (-524288) 524287) in
  let imm_u = map (fun i -> Int64.shift_left (Int64.of_int i) 12)
      (int_range (-524288) 524287) in
  let width = oneofl [ Instr.B; Instr.H; Instr.W; Instr.D ] in
  let branch = oneofl Instr.[ Beq; Bne; Blt; Bge; Bltu; Bgeu ] in
  let op =
    oneofl
      Instr.[ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And;
              Mul; Mulh; Mulhsu; Mulhu; Div; Divu; Rem; Remu ]
  in
  let op32 =
    oneofl Instr.[ Addw; Subw; Sllw; Srlw; Sraw; Mulw; Divw; Divuw; Remw; Remuw ]
  in
  let csr_op = oneofl Instr.[ Csrrw; Csrrs; Csrrc ] in
  oneof
    [
      map2 (fun rd imm -> Instr.Lui (rd, imm)) reg imm_u;
      map2 (fun rd imm -> Instr.Auipc (rd, imm)) reg imm_u;
      map2 (fun rd imm -> Instr.Jal (rd, imm)) reg imm21;
      map3 (fun rd rs1 imm -> Instr.Jalr (rd, rs1, imm)) reg reg imm12;
      (branch >>= fun op ->
       map3 (fun a b imm -> Instr.Branch (op, a, b, imm)) reg reg imm13);
      (width >>= fun width ->
       bool >>= fun unsigned ->
       let unsigned = if width = Instr.D then false else unsigned in
       map3
         (fun rd rs1 imm -> Instr.Load { width; unsigned; rd; rs1; imm })
         reg reg imm12);
      (width >>= fun width ->
       map3 (fun rs2 rs1 imm -> Instr.Store { width; rs2; rs1; imm }) reg reg
         imm12);
      (oneofl Instr.[ Addi; Slti; Sltiu; Xori; Ori; Andi ] >>= fun op ->
       map3 (fun rd rs1 imm -> Instr.Op_imm (op, rd, rs1, imm)) reg reg imm12);
      (oneofl Instr.[ Slli; Srli; Srai ] >>= fun op ->
       map3
         (fun rd rs1 sh -> Instr.Op_imm (op, rd, rs1, Int64.of_int sh))
         reg reg (int_range 0 63));
      (op >>= fun op -> map3 (fun rd a b -> Instr.Op (op, rd, a, b)) reg reg reg);
      (op32 >>= fun op ->
       map3 (fun rd a b -> Instr.Op32 (op, rd, a, b)) reg reg reg);
      (csr_op >>= fun op ->
       int_range 0 0xFFF >>= fun csr ->
       bool >>= fun use_imm ->
       reg >>= fun rd ->
       reg >>= fun r ->
       return
         (Instr.Csr
            {
              op;
              rd;
              src = (if use_imm then Instr.Imm r else Instr.Reg r);
              csr;
            }));
      oneofl
        Instr.[ Fence; Fence_i; Ecall; Ebreak; Mret; Sret; Wfi ];
      map2 (fun a b -> Instr.Sfence_vma (a, b)) reg reg;
    ]

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode(encode) = id" ~count:2000
       (QCheck.make gen_instr ~print:Instr.to_string)
       (fun i ->
         match Decode.decode (Encode.encode i) with
         | Some i' -> i = i'
         | None -> false))

let prop_decode_total =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode never raises" ~count:20000
       QCheck.(int_bound 0x3FFFFFFF)
       (fun w ->
         (* cover all 4 top bits too *)
         let words = [ w; w lor 0x40000000; w lor (3 lsl 30) ] in
         List.for_all
           (fun w ->
             match Decode.decode w with Some _ | None -> true)
           words))

let () =
  Alcotest.run "decode"
    [
      ( "decode",
        [
          Alcotest.test_case "known encodings" `Quick test_known_encodings;
          Alcotest.test_case "branch offsets" `Quick test_branch_offsets;
          Alcotest.test_case "jump offsets" `Quick test_jump_offsets;
          Alcotest.test_case "u-type" `Quick test_u_type;
          Alcotest.test_case "csr forms" `Quick test_csr_forms;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "sfence" `Quick test_sfence;
          Alcotest.test_case "illegal encodings" `Quick test_illegal_encodings;
          prop_roundtrip;
          prop_decode_total;
        ] );
    ]
