(* Sv39 page-table walker unit tests: permissions, superpages, A/D
   management, canonicality. The walker also backs Miralis's MPRV
   emulation, so these cases matter for the VFM too. *)

module Vmem = Mir_rv.Vmem
module Priv = Mir_rv.Priv
module Bits = Mir_util.Bits

(* A tiny physical memory for page tables. *)
let mem = Hashtbl.create 64
let read a = Some (Option.value ~default:0L (Hashtbl.find_opt mem a))
let write a v = Hashtbl.replace mem a v
let clear () = Hashtbl.reset mem

let root = 0x80010000L
let satp = Int64.logor (Int64.shift_left 8L 60) (Int64.shift_right_logical root 12)

let pte ?(v = true) ?(r = false) ?(w = false) ?(x = false) ?(u = false)
    ?(a = false) ?(d = false) ppn =
  let f c b = if c then b else 0L in
  Int64.logor
    (Int64.shift_left ppn 10)
    (Int64.logor (f v Vmem.pte_v)
       (Int64.logor (f r Vmem.pte_r)
          (Int64.logor (f w Vmem.pte_w)
             (Int64.logor (f x Vmem.pte_x)
                (Int64.logor (f u Vmem.pte_u)
                   (Int64.logor (f a Vmem.pte_a) (f d Vmem.pte_d)))))))

(* map vaddr -> paddr with a full 3-level walk (4K page) *)
let map_4k ?(perm = fun p -> p) vaddr paddr =
  let vpn2 = Bits.extract vaddr ~lo:30 ~hi:38 in
  let vpn1 = Bits.extract vaddr ~lo:21 ~hi:29 in
  let vpn0 = Bits.extract vaddr ~lo:12 ~hi:20 in
  let l1 = Int64.add root 0x1000L and l0 = Int64.add root 0x2000L in
  write (Int64.add root (Int64.mul vpn2 8L))
    (pte (Int64.shift_right_logical l1 12));
  write (Int64.add l1 (Int64.mul vpn1 8L))
    (pte (Int64.shift_right_logical l0 12));
  write
    (Int64.add l0 (Int64.mul vpn0 8L))
    (perm (pte ~r:true ~w:true ~x:true ~a:true ~d:true
             (Int64.shift_right_logical paddr 12)))

let translate ?(priv = Priv.S) ?(sum = false) ?(mxr = false) access vaddr =
  Vmem.translate ~read ~write ~satp ~priv ~sum ~mxr access vaddr

let test_bare_and_mmode () =
  clear ();
  (* satp = 0 or M-mode: identity *)
  Alcotest.(check bool) "bare" true
    (Vmem.translate ~read ~write ~satp:0L ~priv:Priv.S ~sum:false ~mxr:false
       Vmem.Load 0x1234L
    = Ok 0x1234L);
  Alcotest.(check bool) "M ignores satp" true
    (Vmem.translate ~read ~write ~satp ~priv:Priv.M ~sum:false ~mxr:false
       Vmem.Load 0x1234L
    = Ok 0x1234L)

let test_4k_mapping () =
  clear ();
  map_4k 0x40000000L 0x80200000L;
  Alcotest.(check bool) "load maps" true
    (translate Vmem.Load 0x40000ABCL = Ok 0x80200ABCL)

let test_gigapage () =
  clear ();
  (* VPN2 = 2 maps a 1 GiB leaf at phys 0x80000000 (1 GiB aligned) *)
  write (Int64.add root 16L)
    (pte ~r:true ~w:true ~x:true ~a:true ~d:true 0x80000L);
  Alcotest.(check bool) "gigapage" true
    (translate Vmem.Load 0x80123456L = Ok 0x80123456L)

let test_misaligned_superpage_faults () =
  clear ();
  (* a 1 GiB leaf whose PPN is not 1 GiB aligned is a fault *)
  write (Int64.add root 16L)
    (pte ~r:true ~a:true ~d:true 0x80001L);
  Alcotest.(check bool) "misaligned superpage" true
    (translate Vmem.Load 0x80000000L = Error Mir_rv.Cause.Load_page_fault)

let test_permission_bits () =
  clear ();
  map_4k ~perm:(fun p -> Int64.logand p (Int64.lognot Vmem.pte_w))
    0x40000000L 0x80200000L;
  Alcotest.(check bool) "read ok" true
    (translate Vmem.Load 0x40000000L = Ok 0x80200000L);
  Alcotest.(check bool) "write denied" true
    (translate Vmem.Store 0x40000000L = Error Mir_rv.Cause.Store_page_fault)

let test_u_bit_and_sum () =
  clear ();
  map_4k ~perm:(fun p -> Int64.logor p Vmem.pte_u) 0x40000000L 0x80200000L;
  (* S-mode access to a U page requires SUM *)
  Alcotest.(check bool) "S denied without SUM" true
    (translate ~priv:Priv.S Vmem.Load 0x40000000L
    = Error Mir_rv.Cause.Load_page_fault);
  Alcotest.(check bool) "S allowed with SUM" true
    (translate ~priv:Priv.S ~sum:true Vmem.Load 0x40000000L = Ok 0x80200000L);
  (* but never for fetch *)
  Alcotest.(check bool) "S fetch of U page denied" true
    (translate ~priv:Priv.S ~sum:true Vmem.Fetch 0x40000000L
    = Error Mir_rv.Cause.Instr_page_fault);
  (* U-mode needs the U bit *)
  Alcotest.(check bool) "U allowed" true
    (translate ~priv:Priv.U Vmem.Load 0x40000000L = Ok 0x80200000L);
  clear ();
  map_4k 0x40000000L 0x80200000L;
  Alcotest.(check bool) "U denied on S page" true
    (translate ~priv:Priv.U Vmem.Load 0x40000000L
    = Error Mir_rv.Cause.Load_page_fault)

let test_mxr () =
  clear ();
  map_4k
    ~perm:(fun p ->
      (* execute-only: clear R and W (W-without-R is reserved) *)
      Int64.logor Vmem.pte_x
        (Int64.logand p
           (Int64.lognot (Int64.logor Vmem.pte_r Vmem.pte_w))))
    0x40000000L 0x80200000L;
  Alcotest.(check bool) "X-only load denied" true
    (translate Vmem.Load 0x40000000L = Error Mir_rv.Cause.Load_page_fault);
  Alcotest.(check bool) "X-only load allowed with MXR" true
    (translate ~mxr:true Vmem.Load 0x40000000L = Ok 0x80200000L)

let test_ad_bits_managed () =
  clear ();
  map_4k ~perm:(fun p ->
      Int64.logand p (Int64.lognot (Int64.logor Vmem.pte_a Vmem.pte_d)))
    0x40000000L 0x80200000L;
  ignore (translate Vmem.Store 0x40000000L);
  let vpn0 = 0L in
  let l0 = Int64.add root 0x2000L in
  let p = Option.get (read (Int64.add l0 (Int64.mul vpn0 8L))) in
  Alcotest.(check bool) "A set" true (Int64.logand p Vmem.pte_a <> 0L);
  Alcotest.(check bool) "D set on store" true (Int64.logand p Vmem.pte_d <> 0L)

let test_invalid_and_noncanonical () =
  clear ();
  Alcotest.(check bool) "invalid PTE" true
    (translate Vmem.Load 0x40000000L = Error Mir_rv.Cause.Load_page_fault);
  Alcotest.(check bool) "non-canonical address" true
    (translate Vmem.Fetch 0x4000000000L = Error Mir_rv.Cause.Instr_page_fault);
  (* W without R is reserved in a PTE *)
  clear ();
  map_4k ~perm:(fun _ -> pte ~w:true ~a:true ~d:true 0x80200L)
    0x40000000L 0x80200000L;
  Alcotest.(check bool) "W-without-R PTE faults" true
    (translate Vmem.Load 0x40000000L = Error Mir_rv.Cause.Load_page_fault)

let () =
  Alcotest.run "vmem"
    [
      ( "sv39",
        [
          Alcotest.test_case "bare/M-mode" `Quick test_bare_and_mmode;
          Alcotest.test_case "4K mapping" `Quick test_4k_mapping;
          Alcotest.test_case "gigapage" `Quick test_gigapage;
          Alcotest.test_case "misaligned superpage" `Quick
            test_misaligned_superpage_faults;
          Alcotest.test_case "permissions" `Quick test_permission_bits;
          Alcotest.test_case "U bit + SUM" `Quick test_u_bit_and_sum;
          Alcotest.test_case "MXR" `Quick test_mxr;
          Alcotest.test_case "A/D management" `Quick test_ad_bits_managed;
          Alcotest.test_case "invalid/non-canonical" `Quick
            test_invalid_and_noncanonical;
        ] );
    ]
