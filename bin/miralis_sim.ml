(* miralis-sim: the command-line front end.

   Subcommands:
     run          boot a firmware natively or under Miralis
     verify       run the lightweight-formal-methods checkers
     experiments  regenerate the paper's tables and figures
     platforms    list the platform models *)

open Cmdliner
module Setup = Mir_harness.Setup
module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let platform_arg =
  let parse s =
    match Platform.by_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown platform %S (known: %s)" s
               (String.concat ", "
                  (List.map (fun p -> p.Platform.name) Platform.all))))
  in
  let print fmt p = Format.pp_print_string fmt p.Platform.name in
  Arg.(
    value
    & opt (conv (parse, print)) Platform.visionfive2
    & info [ "p"; "platform" ] ~docv:"NAME" ~doc:"Platform model to simulate.")

let mode_arg =
  let modes =
    [
      ("native", Setup.Native);
      ("miralis", Setup.Virtualized);
      ("no-offload", Setup.Virtualized_no_offload);
    ]
  in
  Arg.(
    value
    & opt (enum modes) Setup.Virtualized
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Execution mode: $(b,native), $(b,miralis) or $(b,no-offload).")

let firmware_choices =
  [
    ("minisbi", `Minisbi); ("rustsbi", `Rustsbi); ("zephyr", `Zephyr);
    ("star64", `Star64); ("evil-read", `Evil Mir_firmware.Evil.Read_os_memory);
    ("evil-write", `Evil Mir_firmware.Evil.Write_os_memory);
    ("evil-miralis", `Evil Mir_firmware.Evil.Read_miralis_memory);
    ("evil-pmp", `Evil Mir_firmware.Evil.Pmp_escape);
    ("evil-dma", `Evil Mir_firmware.Evil.Dma_attack);
  ]

let firmware_arg =
  Arg.(
    value
    & opt (enum firmware_choices) `Minisbi
    & info [ "f"; "firmware" ] ~docv:"FW"
        ~doc:
          "Firmware image: $(b,minisbi), $(b,rustsbi), $(b,zephyr), \
           $(b,star64) or an $(b,evil-*) attack image.")

let firmware_image = function
  | `Minisbi -> Mir_firmware.Minisbi.image
  | `Rustsbi -> Mir_firmware.Rustsbi_like.image
  | `Zephyr -> Mir_firmware.Zephyr_like.image
  | `Star64 -> Mir_firmware.Star64.image
  | `Evil a -> Mir_firmware.Evil.image a

let policy_arg =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("sandbox", `Sandbox) ]) `None
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Isolation policy: $(b,none) or $(b,sandbox).")

let max_instrs_arg =
  Arg.(
    value
    & opt int64 50_000_000L
    & info [ "max-instrs" ] ~docv:"N" ~doc:"Instruction budget.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print every trap that reaches M-mode.")

let record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:"Record the execution's event log to $(docv) (JSON lines).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Re-execute while verifying every event against the log in \
           $(docv); exits non-zero on the first divergence.")

let checkpoint_arg =
  Arg.(
    value & opt int64 0L
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "With $(b,--record), take an architectural checkpoint every \
           $(docv) instructions (0 disables).")

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let smoke_script =
  [
    Script.Putchar 'o'; Script.Rdtime; Script.Set_timer 200L;
    Script.Tick_wfi 100L; Script.Ipi_self; Script.Misaligned_load;
    Script.Putchar 'k'; Script.Putchar '\n'; Script.End;
  ]

let run_cmd platform mode fw policy max_instrs trace record_file replay_file
    checkpoint_every no_block_engine =
  let policy, pmp_slots =
    match policy with
    | `None -> (None, 1)
    | `Sandbox ->
        let p, _ = Mir_policies.Policy_sandbox.create () in
        (Some p, Mir_policies.Policy_sandbox.pmp_slots)
  in
  let sys =
    match policy with
    | None -> Setup.create ~firmware:(firmware_image fw) platform mode
    | Some p ->
        (* the sandbox needs extra policy PMP slots *)
        let m = Machine.create platform.Platform.machine in
        let fw_img, _ =
          (firmware_image fw) ~nharts:platform.Platform.nharts
            ~kernel_entry:Mir_kernel.Interp_kernel.entry
        in
        Machine.load_program m Mir_firmware.Layout.fw_base fw_img;
        Machine.load_program m Mir_kernel.Interp_kernel.entry
          (fst (Mir_kernel.Interp_kernel.image ()));
        let config =
          Miralis.Config.make ~policy_pmp_slots:pmp_slots
            ~cost:platform.Platform.cost ~machine:platform.Platform.machine ()
        in
        let mir = Miralis.Monitor.create ~policy:p config m in
        Miralis.Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
        { Setup.platform; mode; machine = m; miralis = Some mir }
  in
  if no_block_engine then Machine.set_block_engine sys.Setup.machine false;
  if trace then
    sys.Setup.machine.Machine.on_trap <-
      Some
        (fun _ hart cause ~from_priv ~to_m ->
          Printf.printf "[trap] hart%d pc=%Lx %s from=%s -> %s\n"
            hart.Mir_rv.Hart.id hart.Mir_rv.Hart.pc
            (Mir_rv.Cause.to_string cause)
            (Mir_rv.Priv.to_string from_priv)
            (if to_m then "M" else "S"));
  if record_file <> None && replay_file <> None then begin
    prerr_endline "miralis-sim: --record and --replay are mutually exclusive";
    exit 2
  end;
  let recording =
    match record_file with
    | None -> None
    | Some path ->
        (* fail on an unwritable destination now, not after the run *)
        (try close_out (open_out path)
         with Sys_error msg ->
           Printf.eprintf "miralis-sim: cannot write trace: %s\n" msg;
           exit 2);
        let recorder, _tracer = Setup.attach_recorder sys in
        let mgr =
          if checkpoint_every > 0L then
            Some
              (Setup.checkpoint_manager sys ~every:checkpoint_every
                 ~events_seen:(fun () -> Mir_trace.Recorder.count recorder))
          else None
        in
        Some (path, recorder, mgr)
  in
  let replaying =
    match replay_file with
    | None -> None
    | Some path -> begin
        match Mir_trace.Recorder.load ~path with
        | Error msg ->
            Printf.eprintf "miralis-sim: cannot load trace %s: %s\n" path msg;
            exit 2
        | Ok events ->
            let replay, _tracer = Setup.attach_replay sys ~events in
            Some replay
      end
  in
  Setup.run_scripts ~max_instrs sys [ smoke_script ];
  Printf.printf "console: %s" (Setup.uart_output sys);
  Printf.printf "simulated: %.3f ms on %s (%s)\n"
    (Setup.seconds sys *. 1e3)
    platform.Platform.name (Setup.mode_name sys.Setup.mode);
  (match Setup.stats sys with
  | Some stats -> Format.printf "%a@." Miralis.Vfm_stats.pp stats
  | None -> ());
  (match sys.Setup.miralis with
  | Some { Miralis.Monitor.violation = Some v; _ } ->
      Printf.printf "policy violation: %s\n" v
  | _ -> ());
  (match recording with
  | Some (path, recorder, mgr) ->
      Mir_trace.Recorder.save recorder ~path;
      Printf.printf "recorded %d events to %s%s\n"
        (Mir_trace.Recorder.count recorder)
        path
        (match Mir_trace.Recorder.dropped recorder with
        | 0 -> ""
        | n -> Printf.sprintf " (%d oldest dropped!)" n);
      (match mgr with
      | Some m ->
          Printf.printf "checkpoints: %d\n"
            (List.length (Mir_trace.Snapshot.checkpoints m))
      | None -> ());
      Printf.printf "final state hash: %016Lx\n" (Setup.state_hash sys)
  | None -> ());
  match replaying with
  | Some replay ->
      let outcome = Mir_trace.Replay.finish replay in
      Format.printf "%a@." Mir_trace.Replay.pp_outcome outcome;
      Printf.printf "final state hash: %016Lx\n" (Setup.state_hash sys);
      (match outcome with Mir_trace.Replay.Match _ -> () | _ -> exit 1)
  | None -> ()

let no_block_engine_arg =
  Arg.(
    value & flag
    & info [ "no-block-engine" ]
        ~doc:
          "Execute through the per-instruction interpreter instead of the \
           decoded basic-block engine. Architecturally identical (the \
           engine is bit-exact against the interpreter; digests and \
           recorded traces agree either way), just slower — useful for \
           isolating the engine when debugging, and as the differential \
           baseline.")

let run_term =
  Term.(
    const run_cmd $ platform_arg $ mode_arg $ firmware_arg $ policy_arg
    $ max_instrs_arg $ trace_arg $ record_arg $ replay_arg $ checkpoint_arg
    $ no_block_engine_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let parse_bug = function
  | "" -> None
  | "mpp" -> Some Miralis.Config.Mpp_not_legalized
  | "pmp-wr" -> Some Miralis.Config.Pmp_w_without_r
  | "vpmp-overrun" -> Some Miralis.Config.Vpmp_overrun
  | "irq-priority" -> Some Miralis.Config.Interrupt_priority_swapped
  | "mret-mpie" -> Some Miralis.Config.Mret_skips_mpie
  | other -> failwith ("unknown bug injection: " ^ other)

let inject_bug_arg =
  Arg.(
    value & opt string ""
    & info [ "inject-bug" ] ~docv:"BUG"
        ~doc:
          "Inject a §6.5 bug class: $(b,mpp), $(b,pmp-wr), \
           $(b,vpmp-overrun), $(b,irq-priority), $(b,mret-mpie).")

let seed_arg =
  Arg.(
    value
    & opt int64 Miralis.Config.default_seed
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Root PRNG seed for all sampled checkers.")

let verify_symbolic quick bug =
  let inject_bug = parse_bug bug in
  let reports = Mir_verif.Prove.all ~quick ?inject_bug () in
  List.iter (fun r -> Format.printf "%a@." Mir_verif.Prove.pp_report r) reports;
  let bad = List.exists (fun r -> not (Mir_verif.Prove.proved r)) reports in
  if inject_bug <> None then begin
    let detected =
      List.exists (fun r -> r.Mir_verif.Prove.mismatches > 0) reports
    in
    Printf.printf "\nbug injection %s %s\n" bug
      (if detected then "DETECTED (as expected)"
       else "NOT detected: prover gap!");
    if not detected then exit 1
  end
  else if bad then exit 1

let verify_sampled quick bug seed =
  let inject_bug = parse_bug bug in
  Printf.printf "seed: 0x%Lx (reproduce with --seed 0x%Lx)\n" seed seed;
  let s n = if quick then max 1 (n / 10) else n in
  let reports =
    [
      Mir_verif.Tasks.mret ~samples:(s 3000) ?inject_bug ~seed ();
      Mir_verif.Tasks.sret ~samples:(s 3000) ?inject_bug ~seed ();
      Mir_verif.Tasks.wfi ~samples:(s 3000) ?inject_bug ~seed ();
      Mir_verif.Tasks.decoder ~words:(s 400_000) ~seed ();
      Mir_verif.Tasks.csr_read ~samples:(s 40) ?inject_bug ~seed ();
      Mir_verif.Tasks.csr_write ~samples:(s 60) ?inject_bug ~seed ();
      Mir_verif.Tasks.virtual_interrupt ?inject_bug ();
      Mir_verif.Tasks.end_to_end ~samples:(s 25) ?inject_bug ~seed ();
      Mir_verif.Faithful_execution.run ~configs:(s 400) ?inject_bug ~seed ();
    ]
  in
  List.iter (fun r -> Format.printf "%a@." Mir_verif.Tasks.pp_report r) reports;
  let bad = List.exists (fun r -> r.Mir_verif.Tasks.mismatches > 0) reports in
  if inject_bug <> None then
    Printf.printf "\nbug injection %s %s\n" bug
      (if bad then "DETECTED (as expected)" else "NOT detected: checker gap!")
  else if bad then exit 1

let verify_cmd symbolic quick bug seed =
  if symbolic then verify_symbolic quick bug
  else verify_sampled quick bug seed

let verify_term =
  Term.(
    const verify_cmd
    $ Arg.(
        value & flag
        & info [ "symbolic" ]
            ~doc:
              "Run the symbolic faithful-emulation prover instead of the \
               sampled checkers: covers all states, reports proved and \
               unexplored path counts, extracts concrete counterexamples.")
    $ Arg.(
        value & flag
        & info [ "quick" ]
            ~doc:
              "Reduced sample counts; with $(b,--symbolic), restrict the \
               CSR sweep to implemented addresses plus interesting corners.")
    $ inject_bug_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_replay ~inject_bug ~seed path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "miralis-sim: %s: no such file or directory\n" path;
    exit 2
  end;
  let vectors =
    if Sys.is_directory path then
      Mir_fuzz.Corpus.load_dir path
      |> List.filter (fun (name, _) ->
             (* skip minimized duplicates of full crash vectors *)
             not (Filename.check_suffix name ".min.jsonl")
             || not
                  (Sys.file_exists
                     (Filename.concat path
                        (Filename.chop_suffix name ".min.jsonl" ^ ".jsonl"))))
    else [ (Filename.basename path, Mir_fuzz.Input.load ~path) ]
  in
  let bad_parse = ref false in
  let inputs =
    List.filter_map
      (fun (name, r) ->
        match r with
        | Ok input -> Some (name, input)
        | Error msg ->
            Printf.eprintf "miralis-sim: %s: %s\n" name msg;
            bad_parse := true;
            None)
      vectors
  in
  if inputs = [] then begin
    Printf.eprintf "miralis-sim: no vectors under %s\n" path;
    exit 2
  end;
  let verdict, coverage = Mir_fuzz.Fuzzer.replay ?inject_bug ~seed inputs in
  Printf.printf "replayed %d vectors, %d coverage edges\n" (List.length inputs)
    (Mir_fuzz.Coverage.edges coverage);
  match verdict with
  | Ok () ->
      if !bad_parse then exit 2;
      Printf.printf "all vectors agree\n"
  | Error (name, idx, reason) ->
      Printf.printf "DIVERGENCE in %s at op %d:\n  %s\n" name idx reason;
      if inject_bug <> None then
        Printf.printf "bug injection DETECTED (as expected)\n"
      else exit 1

let pgfuzz_cmd ~seed ~max_execs =
  Printf.printf "fuzz --paging: seed=0x%Lx max-execs=%d\n" seed max_execs;
  let r = Mir_fuzz.Pgfuzz.run ~seed ~max_execs () in
  Printf.printf "%d execs in %.2fs (%.0f/s), %d (op,outcome) edges\n"
    r.Mir_fuzz.Pgfuzz.execs r.Mir_fuzz.Pgfuzz.seconds
    r.Mir_fuzz.Pgfuzz.execs_per_sec r.Mir_fuzz.Pgfuzz.edges;
  match r.Mir_fuzz.Pgfuzz.divergence with
  | None -> Printf.printf "no divergence found\n"
  | Some (at, d) ->
      Printf.printf
        "DIVERGENCE at exec %d, op %d:\n  op: %s\n  tlb:    %s\n  \
         walker: %s\nreproduce with: fuzz --paging --seed 0x%Lx \
         --max-execs %d\n"
        at d.Mir_verif.Pgdiff.op_index d.Mir_verif.Pgdiff.op
        d.Mir_verif.Pgdiff.tlb_outcome d.Mir_verif.Pgdiff.walker_outcome
        seed max_execs;
      exit 1

let blockfuzz_cmd ~seed ~max_execs =
  Printf.printf "fuzz --blocks: seed=0x%Lx max-execs=%d\n" seed max_execs;
  let r = Mir_fuzz.Blockfuzz.run ~seed ~max_execs () in
  Printf.printf "%d execs in %.2fs (%.0f/s), %d segment-summary edges\n"
    r.Mir_fuzz.Blockfuzz.execs r.Mir_fuzz.Blockfuzz.seconds
    r.Mir_fuzz.Blockfuzz.execs_per_sec r.Mir_fuzz.Blockfuzz.edges;
  match r.Mir_fuzz.Blockfuzz.divergence with
  | None -> Printf.printf "no divergence found\n"
  | Some (at, shrunk, d) ->
      Format.printf
        "DIVERGENCE at exec %d, segment %d, field %s:@\n  blocks: %s@\n  \
         interp: %s@\nshrunk case: %a@\nreproduce with: fuzz --blocks \
         --seed 0x%Lx --max-execs %d@."
        at d.Mir_verif.Blockdiff.seg_index d.Mir_verif.Blockdiff.field
        d.Mir_verif.Blockdiff.blocks_state d.Mir_verif.Blockdiff.interp_state
        Mir_verif.Blockdiff.pp_case shrunk seed max_execs;
      let path = Printf.sprintf "blockdiff-%Lx.jsonl" seed in
      Mir_verif.Blockdiff.save shrunk ~path;
      Printf.printf "shrunk reproduction written to %s\n" path;
      exit 1

let fuzz_cmd seed max_execs corpus_dir bug replay_path emit_dir paging blocks =
  let inject_bug = parse_bug bug in
  if paging then pgfuzz_cmd ~seed ~max_execs
  else if blocks then blockfuzz_cmd ~seed ~max_execs
  else
  match (emit_dir, replay_path) with
  | Some dir, _ ->
      let paths = Mir_fuzz.Vectors.emit ~dir in
      Printf.printf "wrote %d conformance vectors to %s\n" (List.length paths)
        dir
  | None, Some path -> fuzz_replay ~inject_bug ~seed path
  | None, None ->
      Printf.printf "fuzz: seed=0x%Lx max-execs=%d%s\n" seed max_execs
        (match inject_bug with
        | Some _ -> Printf.sprintf " inject-bug=%s" bug
        | None -> "");
      let r =
        Mir_fuzz.Fuzzer.run ?inject_bug ?corpus_dir ~seed ~max_execs ()
      in
      List.iter
        (fun (execs, edges) ->
          Printf.printf "  after %6d execs: %4d edges\n" execs edges)
        r.Mir_fuzz.Fuzzer.curve;
      Printf.printf
        "%d execs in %.2fs (%.0f/s), %d coverage edges, %d corpus inputs\n"
        r.Mir_fuzz.Fuzzer.execs r.Mir_fuzz.Fuzzer.seconds
        r.Mir_fuzz.Fuzzer.execs_per_sec
        (Mir_fuzz.Coverage.edges r.Mir_fuzz.Fuzzer.coverage)
        (List.length r.Mir_fuzz.Fuzzer.corpus);
      (match r.Mir_fuzz.Fuzzer.divergence with
      | None -> Printf.printf "no divergence found\n"
      | Some d ->
          Format.printf
            "DIVERGENCE after %d execs:@\n  %s@\nfailing input: %a@\n\
             shrunk to %d ops: %a@\nreproduce with: fuzz --seed 0x%Lx\
             %s --max-execs %d@."
            d.Mir_fuzz.Fuzzer.at_exec d.Mir_fuzz.Fuzzer.reason
            Mir_fuzz.Input.pp d.Mir_fuzz.Fuzzer.input
            (Mir_fuzz.Input.length d.Mir_fuzz.Fuzzer.shrunk)
            Mir_fuzz.Input.pp d.Mir_fuzz.Fuzzer.shrunk seed
            (match inject_bug with
            | Some _ -> " --inject-bug " ^ bug
            | None -> "")
            max_execs;
          if inject_bug <> None then
            Printf.printf "bug injection DETECTED (as expected)\n"
          else exit 1);
      if inject_bug <> None && r.Mir_fuzz.Fuzzer.divergence = None then
        Printf.printf "bug injection %s NOT detected: fuzzer gap!\n" bug

let fuzz_term =
  Term.(
    const fuzz_cmd $ seed_arg
    $ Arg.(
        value & opt int 20_000
        & info [ "max-execs" ] ~docv:"N"
            ~doc:"Execution budget for the campaign.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "corpus" ] ~docv:"DIR"
            ~doc:
              "Persist coverage-increasing inputs, crashes and the \
               coverage map to $(docv).")
    $ inject_bug_arg
    $ Arg.(
        value
        & opt (some string) None
        & info [ "replay" ] ~docv:"PATH"
            ~doc:
              "Replay a vector file or a directory of vectors instead of \
               fuzzing; exits non-zero on divergence.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "emit-vectors" ] ~docv:"DIR"
            ~doc:"Write the built-in conformance vectors to $(docv) and exit.")
    $ Arg.(
        value & flag
        & info [ "paging" ]
            ~doc:
              "Fuzz the paging fast path instead: differential streams of \
               page-table edits, satp switches, fences, SUM/MXR/MPRV flips \
               and PMP reconfigurations, TLB machine vs raw-walker machine. \
               Exits non-zero on divergence.")
    $ Arg.(
        value & flag
        & info [ "blocks" ]
            ~doc:
              "Fuzz the decoded basic-block engine instead: generated guest \
               programs (tight loops, mid-block traps, self-modifying code, \
               vm-epoch-bumping CSR writes) executed through the block \
               engine against the per-instruction interpreter in lockstep. \
               Exits non-zero on divergence, after shrinking."))

(* ------------------------------------------------------------------ *)
(* explore                                                             *)
(* ------------------------------------------------------------------ *)

module Explore = Mir_explore.Explore
module Scenario = Mir_explore.Scenario
module Schedule = Mir_trace.Schedule

let explore_scenarios scenario =
  match scenario with
  | "" -> Ok Scenario.all
  | name -> (
      match Scenario.find name with
      | Some s -> Ok [ s ]
      | None ->
          Error
            (Printf.sprintf "unknown scenario %S (known: %s)" name
               (String.concat ", "
                  (List.map (fun s -> s.Scenario.name) Scenario.all))))

(* Smoke mode: no bug injected; every oracle must stay clean under
   every scheduler family. *)
let explore_smoke scenarios ~seed ~max_schedules ~nharts =
  let clean = ref true in
  List.iter
    (fun scn ->
      List.iter
        (fun family ->
          let budget =
            match family with
            | Explore.Rr -> 1
            | _ -> max 1 (max_schedules / 2)
          in
          let c =
            Explore.run_family scn ~family ~seed ~max_schedules:budget ~nharts
              ()
          in
          Printf.printf "%-8s %-11s %4d schedules, %7d steps%s\n"
            scn.Scenario.name
            (Explore.family_name family)
            c.Explore.schedules_run c.Explore.steps_total
            (match c.Explore.caught with
            | None -> ""
            | Some (v, _) ->
                clean := false;
                Printf.sprintf "  VIOLATION %s (hart %d): %s" v.oracle v.hart
                  v.detail))
        [ Explore.Rr; Explore.Random; Explore.Pct ])
    scenarios;
  if !clean then Printf.printf "all oracles clean\n" else exit 1

(* Injection mode: the explorer must catch the armed race with a
   preemptive scheduler while plain round-robin stays green. *)
let explore_inject bug ~seed ~max_schedules ~nharts ~emit =
  let scn = Explore.scenario_for_bug bug in
  let name = Explore.bug_name bug in
  Printf.printf "inject-bug %s -> scenario %s (seed 0x%Lx)\n" name
    scn.Scenario.name seed;
  let rr =
    Explore.run_family scn ~bug ~family:Explore.Rr ~seed ~max_schedules:1
      ~nharts ()
  in
  (match rr.Explore.caught with
  | None -> Printf.printf "round-robin: clean (bug hides from the baseline)\n"
  | Some (v, _) ->
      Printf.printf "round-robin: CAUGHT %s — bug visible without preemption\n"
        v.oracle);
  let caught = ref None in
  List.iter
    (fun family ->
      if !caught = None then begin
        let c =
          Explore.run_family scn ~bug ~family ~seed ~max_schedules ~nharts ()
        in
        match c.Explore.caught with
        | Some (v, sch) ->
            Printf.printf "%s: caught %s after %d schedules (hart %d: %s)\n"
              (Explore.family_name family)
              v.oracle c.Explore.schedules_run v.hart v.detail;
            caught := Some sch
        | None ->
            Printf.printf "%s: not caught in %d schedules\n"
              (Explore.family_name family)
              c.Explore.schedules_run
      end)
    [ Explore.Random; Explore.Pct; Explore.Dfs ];
  match !caught with
  | None ->
      Printf.printf "bug injection %s NOT caught: explorer gap!\n" name;
      exit 1
  | Some sch ->
      let shrunk = Explore.shrink sch in
      Printf.printf "shrunk %d -> %d preemption points\n"
        (Schedule.preemption_points sch)
        (Schedule.preemption_points shrunk);
      (match emit with
      | Some path ->
          Schedule.save shrunk ~path;
          Printf.printf "schedule written to %s\n" path
      | None -> ());
      if rr.Explore.caught <> None then exit 1

let explore_replay path =
  let paths =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
      |> List.sort compare
      |> List.map (Filename.concat path)
    else [ path ]
  in
  let failed = ref false in
  List.iter
    (fun p ->
      match Schedule.load ~path:p with
      | Error e ->
          Printf.printf "%s: LOAD ERROR %s\n" p e;
          failed := true
      | Ok sch -> (
          match Explore.replay sch with
          | Error e ->
              Printf.printf "%s: %s\n" p e;
              failed := true
          | Ok o ->
              if Explore.reproduces sch o then
                Printf.printf "%s: reproduced %s (%d preemption points)\n" p
                  sch.Schedule.oracle
                  (Schedule.preemption_points sch)
              else begin
                Printf.printf "%s: DIVERGED (expected oracle %S, got %s)\n" p
                  sch.Schedule.oracle
                  (match o.Explore.violation with
                  | Some v -> v.Mir_explore.Oracle.oracle
                  | None -> "no violation");
                failed := true
              end))
    paths;
  if !failed then exit 1

let explore_cmd scenario seed max_schedules harts bug replay emit =
  match replay with
  | Some path -> explore_replay path
  | None -> (
      match bug with
      | "" -> (
          match explore_scenarios scenario with
          | Error e ->
              Printf.eprintf "%s\n" e;
              exit 2
          | Ok scenarios ->
              explore_smoke scenarios ~seed ~max_schedules ~nharts:harts)
      | name -> (
          match Explore.bug_of_name name with
          | Ok (Some bug) ->
              explore_inject bug ~seed ~max_schedules ~nharts:harts ~emit
          | Ok None | Error _ ->
              Printf.eprintf
                "unknown race bug %S (known: vm-epoch, msip-drop, \
                 pmp-handoff)\n"
                name;
              exit 2))

let explore_term =
  Term.(
    const explore_cmd
    $ Arg.(
        value & opt string ""
        & info [ "scenario" ] ~docv:"NAME"
            ~doc:
              "Restrict to one scenario: $(b,ipi), $(b,sfence), \
               $(b,keystone). Default: all.")
    $ seed_arg
    $ Arg.(
        value & opt int 200
        & info [ "max-schedules" ] ~docv:"N"
            ~doc:"Schedule budget per scheduler family.")
    $ Arg.(
        value & opt int 2
        & info [ "harts" ] ~docv:"N" ~doc:"Number of harts to explore with.")
    $ Arg.(
        value & opt string ""
        & info [ "inject-bug" ] ~docv:"BUG"
            ~doc:
              "Arm a seeded cross-hart race: $(b,vm-epoch), $(b,msip-drop), \
               $(b,pmp-handoff). The explorer must catch it (and plain \
               round-robin must not) or the command fails.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "replay-schedule" ] ~docv:"PATH"
            ~doc:
              "Replay a schedule artifact (or a directory of them) and exit \
               non-zero unless each reproduces its recorded oracle verdict.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "emit-schedule" ] ~docv:"PATH"
            ~doc:
              "With $(b,--inject-bug): write the shrunk failing schedule to \
               $(docv)."))

(* ------------------------------------------------------------------ *)
(* fleet                                                               *)
(* ------------------------------------------------------------------ *)

module Fleet = Mir_fleet.Fleet

let fleet_cmd machines domains workload seed duration_ms quiet =
  (match Mir_fleet.Load.find workload with
  | Some _ -> ()
  | None ->
      Printf.eprintf "unknown workload %S (known: %s)\n" workload
        (String.concat ", " Mir_fleet.Load.known_names);
      exit 2);
  if machines < 1 then begin
    prerr_endline "miralis-sim: --machines must be >= 1";
    exit 2
  end;
  if domains < 1 then begin
    prerr_endline "miralis-sim: --domains must be >= 1";
    exit 2
  end;
  let spec =
    { Fleet.default_spec with Fleet.machines; domains; workload; seed;
      duration_ms }
  in
  Printf.printf "fleet: %d machines on %d domains, workload %s, seed 0x%Lx, \
                 %.2f ms simulated load each\n"
    machines domains workload seed duration_ms;
  let r = Fleet.run spec in
  (* per-machine output was buffered inside each domain; drain it here,
     in machine-id order, so the transcript is deterministic *)
  if not quiet then print_string (Fleet.drain_logs r);
  let a = Fleet.aggregate r in
  Printf.printf "aggregate: %d requests, %d traps, %d world switches, \
                 %Ld instrs%s\n"
    a.Fleet.requests a.Fleet.traps a.Fleet.world_switches a.Fleet.instrs
    (if a.Fleet.all_completed then "" else "  [SOME MACHINES HIT THE CAP]");
  Printf.printf "fleet-wide simulated trap rate: %.0f traps/s (consolidated)\n"
    a.Fleet.sim_trap_rate;
  Printf.printf "host throughput: %.0f traps/s over %.2fs wall\n"
    a.Fleet.traps_per_wall_sec r.Fleet.wall_seconds;
  Printf.printf "request latency (simulated cycles): p50=%.0f p99=%.0f \
                 p999=%.0f\n"
    a.Fleet.p50_cycles a.Fleet.p99_cycles a.Fleet.p999_cycles;
  Printf.printf "fleet digest: %016Lx\n" a.Fleet.fleet_digest;
  if not a.Fleet.all_completed then exit 1

let fleet_term =
  Term.(
    const fleet_cmd
    $ Arg.(
        value & opt int Fleet.default_spec.Fleet.machines
        & info [ "machines" ] ~docv:"N" ~doc:"Number of simulated machines.")
    $ Arg.(
        value & opt int 1
        & info [ "domains" ] ~docv:"N"
            ~doc:
              "OCaml domains to run the fleet on (work-stealing pool). \
               Results are bit-identical for every value.")
    $ Arg.(
        value
        & opt string Fleet.default_spec.Fleet.workload
        & info [ "workload" ] ~docv:"NAME"
            ~doc:
              "Load profile: $(b,mix), $(b,memcached), $(b,redis), \
               $(b,mysql) or $(b,gcc).")
    $ Arg.(
        value
        & opt int64 Fleet.default_spec.Fleet.seed
        & info [ "seed" ] ~docv:"SEED"
            ~doc:"Fleet root seed; machine $(i,i) derives its own stream.")
    $ Arg.(
        value
        & opt float Fleet.default_spec.Fleet.duration_ms
        & info [ "duration" ] ~docv:"MS"
            ~doc:"Simulated load window per machine, in milliseconds.")
    $ Arg.(
        value & flag
        & info [ "quiet" ] ~doc:"Suppress the per-machine lines."))

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

module Lint = Mir_analysis.Lint
module Lint_rules = Mir_analysis.Rules

let lint_cmd format disabled only list_rules root dirs =
  if list_rules then
    List.iter
      (fun r ->
        Printf.printf "%-18s %s\n    %s\n" r.Lint_rules.id r.Lint_rules.title
          r.Lint_rules.rationale)
      Lint_rules.all
  else begin
    let unknown =
      List.filter (fun id -> Lint_rules.by_id id = None) (disabled @ only)
    in
    if unknown <> [] then begin
      Printf.eprintf "lint: unknown rule id(s): %s\nknown: %s\n"
        (String.concat ", " unknown)
        (String.concat ", " Lint_rules.ids);
      exit 2
    end;
    let rules =
      match only with
      | [] -> Lint_rules.except disabled
      | only ->
          List.filter (fun r -> List.mem r.Lint_rules.id only) Lint_rules.all
    in
    let dirs = match dirs with [] -> Lint.default_dirs | ds -> ds in
    let report = Lint.run ~rules ~root ~dirs () in
    print_string (Lint.render ~format report);
    if format = `Text then begin
      List.iter
        (fun e ->
          Printf.eprintf
            "lint: note: unused allowlist entry %s (%s) — remove it\n"
            e.Mir_analysis.Allowlist.path e.Mir_analysis.Allowlist.rule)
        report.Lint.unused_allowlist;
      if report.Lint.diagnostics = [] then
        Printf.printf "lint: ok (%d files, %d rules)\n" report.Lint.files
          (List.length rules)
      else
        Printf.eprintf "lint: FAILED (%d diagnostics)\n"
          (List.length report.Lint.diagnostics)
    end;
    if report.Lint.diagnostics <> [] then exit 1
  end

let lint_term =
  Term.(
    const lint_cmd
    $ Arg.(
        value
        & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
        & info [ "format" ] ~docv:"FMT"
            ~doc:"Output format: $(b,text) or $(b,json).")
    $ Arg.(
        value & opt_all string []
        & info [ "disable" ] ~docv:"RULE"
            ~doc:"Disable rule $(docv) (repeatable).")
    $ Arg.(
        value & opt_all string []
        & info [ "rule" ] ~docv:"RULE"
            ~doc:"Run only rule $(docv) (repeatable).")
    $ Arg.(
        value & flag
        & info [ "list-rules" ] ~doc:"Print the rule catalog and exit.")
    $ Arg.(
        value & opt string "."
        & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan.")
    $ Arg.(
        value & pos_all string []
        & info [] ~docv:"DIR"
            ~doc:
              "Directories to scan (default: lib bin bench examples \
               test)."))

(* ------------------------------------------------------------------ *)
(* experiments / platforms                                             *)
(* ------------------------------------------------------------------ *)

let experiments_cmd names =
  let all =
    [
      ("table1", fun () -> Mir_experiments.Exp_tables.table1 ());
      ("table2", fun () -> Mir_experiments.Exp_tables.table2 ());
      ("table3", fun () -> Mir_experiments.Exp_tables.table3 ());
      ("table4", fun () -> Mir_experiments.Exp_tables.table4 ());
      ("table5", fun () -> Mir_experiments.Exp_tables.table5 ());
      ("fig3", fun () -> Mir_experiments.Exp_figs.fig3 ());
      ("fig10", fun () -> Mir_experiments.Exp_figs.fig10 ());
      ("fig11", fun () -> Mir_experiments.Exp_figs.fig11 ());
      ("fig12", fun () -> Mir_experiments.Exp_figs.fig12 ());
      ("fig13", fun () -> Mir_experiments.Exp_figs.fig13 ());
      ("fig14", fun () -> Mir_experiments.Exp_figs.fig14 ());
      ("boottime", fun () -> Mir_experiments.Exp_figs.boot_time ());
      ("sstc", fun () -> Mir_experiments.Exp_figs.sstc_projection ());
      ("q1", fun () -> Mir_experiments.Exp_figs.q1 ());
      ("q4", fun () -> Mir_experiments.Exp_figs.q4 ());
    ]
  in
  match names with
  | [] -> List.iter (fun (_, f) -> f ()) all
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n all with
          | Some f -> f ()
          | None -> Printf.eprintf "unknown experiment %S\n" n)
        names

let experiments_term =
  Term.(
    const experiments_cmd
    $ Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"))

let platforms_cmd () = Mir_experiments.Exp_tables.table3 ()

(* ------------------------------------------------------------------ *)
(* command tree                                                        *)
(* ------------------------------------------------------------------ *)

let cmds =
  [
    Cmd.v
      (Cmd.info "run" ~doc:"Boot a firmware natively or under Miralis")
      run_term;
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Run the faithful-emulation and faithful-execution checkers")
      verify_term;
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Coverage-guided differential fuzzing of the VFM emulator \
            against the reference machine")
      fuzz_term;
    Cmd.v
      (Cmd.info "explore"
         ~doc:
           "Multi-hart schedule exploration: run the interleaving scenarios \
            under round-robin, random, PCT and bounded-DFS schedulers with \
            cross-hart isolation oracles checked at every switch point")
      explore_term;
    Cmd.v
      (Cmd.info "fleet"
         ~doc:
           "Run a fleet of independent simulated machines across OCaml \
            domains, fed by the seeded load generator, and report \
            fleet-wide trap throughput and request-latency percentiles")
      fleet_term;
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Run the AST-driven invariant analyzer (lib/analysis) over the \
            source tree: the repository invariants the type system cannot \
            express, checked on the Parsetree with structured allowlists")
      lint_term;
    Cmd.v
      (Cmd.info "experiments"
         ~doc:"Regenerate the paper's tables and figures")
      experiments_term;
    Cmd.v
      (Cmd.info "platforms" ~doc:"List the platform models")
      Term.(const platforms_cmd $ const ());
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "miralis-sim" ~version:"1.0.0"
             ~doc:"A virtual firmware monitor on a simulated RISC-V machine")
          cmds))
