#!/bin/sh
# Thin wrapper over the AST-driven invariant analyzer (lib/analysis).
#
# The rules themselves — Obj.magic, stdlib Random, the sanctioned
# Csr_file write paths, raw satp installs, the Machine.step /
# step_blocks fences, module-top-level mutable state under lib/, the
# Domain.spawn/Pool.run closure-capture race detector, and the
# wall-clock/entropy determinism rule — live in lib/analysis/rules.ml
# with their rationale and sanctioned paths; point exceptions live in
# lib/analysis/allowlist.ml with written justifications. See DESIGN.md
# §12 for the catalog.
#
# Usage: scripts/lint.sh [lint args]
#   scripts/lint.sh --list-rules
#   scripts/lint.sh --format json
set -eu

cd "$(dirname "$0")/.."

exec dune exec bin/miralis_sim.exe -- lint "$@"
