#!/bin/sh
# Forbidden-pattern lint. Fails (exit 1) when source violates one of
# the repository invariants that the type system cannot enforce:
#
#   1. Obj.magic is banned outright.
#   2. The stdlib Random module is banned outside Mir_util.Prng: all
#      randomness must flow from the config-rooted seeded PRNG, or
#      record/replay and the verification seeds lose determinism.
#   3. CSR stores may be mutated (Csr_file.write/write_raw/
#      set_mip_bits) only by the architecture itself (lib/rv), the
#      monitor's sanctioned install paths (emulator, monitor, world
#      switch, offload, vPMP install), the policies, and the
#      verification/test harnesses that construct states. Everything
#      else must go through those layers.
#   4. Raw satp installs (Csr_file.write_raw of satp) are restricted
#      further, to the architecture, the world switch / monitor
#      install paths, and the verification/test harnesses: satp
#      swaps from anywhere else could bypass review of the TLB
#      vm-epoch invalidation contract.
#   5. Stepping a hart directly (Machine.step) is restricted to the
#      machine itself, the lockstep differ, the microbenchmarks, and
#      the block-engine tests (which drive the interpreter as the
#      oracle twin). Multi-hart execution must go through Machine.run
#      or Machine.run_scheduled so the interleaving explorer's
#      schedule control and the run-loop's device/time sync are never
#      bypassed.
#   6. Top-level mutable module state (ref / Hashtbl.create / ...) is
#      banned in the simulator core (lib/rv, lib/core, lib/trace) and
#      in lib/fleet: the fleet runs machines on multiple OCaml domains
#      concurrently, so all mutable state must live inside a
#      per-machine value threaded through constructors. Additions that
#      are genuinely domain-safe must be listed in the allowlist below
#      with a justification.
#   7. Driving the decoded basic-block engine directly
#      (Machine.step_blocks) is restricted to the architecture, the
#      differential harness, the microbenchmarks, and the engine's own
#      tests. Everything else runs through Machine.run, which owns the
#      engine/interpreter dispatch — so the block_engine knob (and the
#      determinism contract behind it) is honored everywhere.
set -u

cd "$(dirname "$0")/.."

fail=0
complain() {
  echo "lint: $1" >&2
  fail=1
}

src_dirs="lib bin bench examples test"

if grep -rn "Obj\.magic" --include='*.ml' --include='*.mli' $src_dirs; then
  complain "Obj.magic is forbidden"
fi

if grep -rn "Random\." --include='*.ml' --include='*.mli' $src_dirs |
  grep -v "^lib/util/prng\.ml:" | grep -v "Prng\." | grep .; then
  complain "use the seeded Mir_util.Prng, never stdlib Random"
fi

csr_write_allow='^(lib/rv/|lib/core/(emulator|monitor|world|offload|vpmp)\.ml|lib/policies/|lib/verif/|test/)'
if grep -rnE "Csr_file\.(write|write_raw|set_mip_bits)" --include='*.ml' \
  $src_dirs | grep -vE "$csr_write_allow" | grep .; then
  complain "direct Csr_file writes outside the sanctioned paths"
fi

satp_raw_allow='^(lib/rv/|lib/core/(world|monitor)\.ml|lib/verif/|test/)'
if grep -rnE "Csr_file\.write_raw[^;]*satp" --include='*.ml' $src_dirs |
  grep -vE "$satp_raw_allow" | grep .; then
  complain "raw satp installs outside the world-switch/architecture layers"
fi

step_allow='^(lib/rv/|lib/verif/|bench/|test/test_blocks\.ml:)'
if grep -rnE "Machine\.step\b" --include='*.ml' $src_dirs |
  grep -vE "$step_allow" | grep .; then
  complain "direct hart stepping outside Machine/diff/bench; use Machine.run or Machine.run_scheduled"
fi

# Rule 7: the block engine's raw stepper stays behind the same fence.
blocks_allow='^(lib/rv/|lib/verif/|bench/|test/test_blocks\.ml:)'
if grep -rnE "Machine\.step_blocks\b" --include='*.ml' $src_dirs |
  grep -vE "$blocks_allow" | grep .; then
  complain "direct block-engine stepping outside Machine/diff/bench; use Machine.run with the block_engine knob"
fi

# Rule 6: no top-level mutable state in the domain-shared core. The
# allowlist is currently empty — every mutable structure in these
# layers is owned by a machine/monitor/tracer instance. Add a line
# like 'lib/core/foo.ml:12:' (with a comment saying why it is
# domain-safe) if a justified exception ever appears.
toplevel_mut_allow='^$'
if grep -rnE "^let [a-zA-Z_0-9']+( *:[^=]*)? *= *(ref\b|Hashtbl\.create|Queue\.create|Buffer\.create|Stack\.create|Atomic\.make|Array\.make)" \
  --include='*.ml' lib/rv lib/core lib/trace lib/fleet |
  grep -vE "$toplevel_mut_allow" | grep .; then
  complain "top-level mutable state in domain-shared core; thread it through the per-machine context (see lint.sh rule 6)"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: ok"
