#!/bin/sh
# Tier-1 check: build, unit tests, then a record/replay smoke run —
# record a virtualized boot with periodic checkpoints, replay the log
# on a fresh system, and require zero divergence (the sim exits 1 on
# any divergence, and the shell's -e propagates it).
set -eu

cd "$(dirname "$0")/.."

dune build

# AST-driven invariant analyzer (lib/analysis, DESIGN.md §12): all nine
# rules over lib/ bin/ bench/ examples/ test/, JSON report, zero
# diagnostics required (the CLI exits 1 on any). scripts/lint.sh wraps
# the same engine for interactive use.
dune exec bin/miralis_sim.exe -- lint --format json

# Analyzer cost stays visible: a files/sec timing line per CI cycle
# (BENCH_lint.json), so rule growth that slows the gate shows up here.
dune exec bench/main.exe -- lint
grep -q '"files_per_sec"' BENCH_lint.json || {
  echo "ci: BENCH_lint.json missing files_per_sec" >&2
  exit 1
}

dune runtest

# Symbolic faithful-emulation proof, quick corner sweep: every path of
# every checked subsystem must be proved equivalent (exit 1 otherwise).
dune exec bin/miralis_sim.exe -- verify --symbolic --quick

trace=$(mktemp /tmp/miralis_smoke.XXXXXX.jsonl)
trap 'rm -f "$trace"' EXIT

dune exec bin/miralis_sim.exe -- run --platform visionfive2 --mode miralis \
  --record "$trace" --checkpoint-every 100000
dune exec bin/miralis_sim.exe -- run --platform visionfive2 --mode miralis \
  --replay "$trace"

# Differential-fuzzing smoke: a short deterministic campaign must find
# no divergence between the reference machine and the emulator (~10s),
# and the checked-in conformance vectors must replay green.
dune exec bin/miralis_sim.exe -- fuzz --max-execs 2000
dune exec bin/miralis_sim.exe -- fuzz --replay test/vectors

# Paging fast-path smoke: the TLB machine and the raw-walker machine
# must agree over 10k generated streams of page-table edits, satp
# switches, fences, SUM/MXR/MPRV flips and PMP reconfigurations.
dune exec bin/miralis_sim.exe -- fuzz --paging --max-execs 10000

# Block-engine smoke: the decoded basic-block engine must stay
# bit-exact with the per-instruction interpreter over 10k generated
# guest programs (self-modifying stores, mid-block traps, vm-epoch
# bumps, fence.i; exit 1 on the first divergence, ~7s).
dune exec bin/miralis_sim.exe -- fuzz --blocks --max-execs 10000

# Schedule-exploration smoke: with no injected bug, every scenario's
# isolation oracles must stay clean under the fixed-seed random and
# PCT schedules (exit 1 on any violation), and the checked-in shrunk
# failing schedules must replay to their recorded violations (exit 1
# on divergence).
dune exec bin/miralis_sim.exe -- explore --max-schedules 200
dune exec bin/miralis_sim.exe -- explore --replay-schedule test/schedules

# Memory-system fast-path benchmark, small budget: the TLB-enabled
# instrs/sec figure must stay within 20% of the committed baseline.
MIRALIS_IPS_BUDGET=1000000 dune exec bench/main.exe -- ips
json_int() { awk -F'[:,]' -v k="\"$2\"" '$1 ~ k { gsub(/[^0-9]/, "", $2); print $2 }' "$1"; }
ips=$(json_int BENCH_ips.json ips_tlb)
base=$(json_int scripts/ips_baseline.json ips_tlb)
floor=$((base * 80 / 100))
if [ "$ips" -lt "$floor" ]; then
  echo "ci: ips regression: $ips instrs/sec < 80% of baseline $base" >&2
  exit 1
fi
echo "ci: ips $ips instrs/sec (baseline $base, floor $floor)"
bips=$(json_int BENCH_ips.json ips_blocks)
bbase=$(json_int scripts/ips_baseline.json ips_blocks)
bfloor=$((bbase * 80 / 100))
if [ "$bips" -lt "$bfloor" ]; then
  echo "ci: block-engine ips regression: $bips instrs/sec < 80% of baseline $bbase" >&2
  exit 1
fi
echo "ci: block ips $bips instrs/sec (baseline $bbase, floor $bfloor)"

# Fleet smoke: a small fixed-seed fleet on 2 domains must complete
# (the CLI exits 1 if any machine hits its instruction budget), and a
# shrunk `bench fleet` must report bit-identical results across
# domain counts plus sane latency fields in BENCH_fleet.json.
dune exec bin/miralis_sim.exe -- fleet --machines 8 --domains 2 \
  --workload mix --duration 0.3 --quiet
MIRALIS_FLEET_MACHINES=6 MIRALIS_FLEET_DURATION_MS=0.25 \
  dune exec bench/main.exe -- fleet
grep -q '"deterministic": true' BENCH_fleet.json || {
  echo "ci: fleet results vary with domain count" >&2
  exit 1
}
grep -q '"all_completed": true' BENCH_fleet.json || {
  echo "ci: fleet machines hit the instruction budget" >&2
  exit 1
}
for field in machines sim_trap_rate p50_cycles p99_cycles p999_cycles \
  fleet_digest scaling; do
  grep -q "\"$field\"" BENCH_fleet.json || {
    echo "ci: BENCH_fleet.json missing field $field" >&2
    exit 1
  }
done
p50=$(json_int BENCH_fleet.json p50_cycles)
[ "$p50" -gt 0 ] || { echo "ci: fleet p50 latency is zero" >&2; exit 1; }
echo "ci: fleet ok (p50 ${p50} cycles)"

echo "ci: ok"
