#!/bin/sh
# Tier-1 check: build, unit tests, then a record/replay smoke run —
# record a virtualized boot with periodic checkpoints, replay the log
# on a fresh system, and require zero divergence (the sim exits 1 on
# any divergence, and the shell's -e propagates it).
set -eu

cd "$(dirname "$0")/.."

scripts/lint.sh

dune build
dune runtest

# Symbolic faithful-emulation proof, quick corner sweep: every path of
# every checked subsystem must be proved equivalent (exit 1 otherwise).
dune exec bin/miralis_sim.exe -- verify --symbolic --quick

trace=$(mktemp /tmp/miralis_smoke.XXXXXX.jsonl)
trap 'rm -f "$trace"' EXIT

dune exec bin/miralis_sim.exe -- run --platform visionfive2 --mode miralis \
  --record "$trace" --checkpoint-every 100000
dune exec bin/miralis_sim.exe -- run --platform visionfive2 --mode miralis \
  --replay "$trace"

# Differential-fuzzing smoke: a short deterministic campaign must find
# no divergence between the reference machine and the emulator (~10s),
# and the checked-in conformance vectors must replay green.
dune exec bin/miralis_sim.exe -- fuzz --max-execs 2000
dune exec bin/miralis_sim.exe -- fuzz --replay test/vectors

echo "ci: ok"
